(* Differential fuzz of the compiled simulation kernel against the
   tree-walking interpreter.

   The compiled engine (Sim.create ~engine:`Compiled, the default) must
   be observationally identical to the interpreter oracle: per-cycle
   outputs, every peekable signal, every memory word, and the VCD dump
   byte-for-byte.  Driven over random netlists exercising the full
   expression language (including width-62/63 fast-path boundaries,
   wide shift amounts, memories with multiple write ports, register
   enables) and over every RTL design in lib/designs. *)

module Bitvec = Dfv_bitvec.Bitvec
module Netlist = Dfv_rtl.Netlist
module Expr = Dfv_rtl.Expr
module Sim = Dfv_rtl.Sim
module Vcd = Dfv_rtl.Vcd
open Dfv_designs

let bv = Alcotest.testable Bitvec.pp Bitvec.equal

(* --- generic engine differ --------------------------------------------- *)

let address_width size =
  let rec go w = if 1 lsl w >= size then w else go (w + 1) in
  max 1 (go 0)

type obs =
  | Ok_out of (string * Bitvec.t) list
  | Raised of string (* Printexc rendering *)

let obs_cycle sim inputs =
  try Ok_out (Sim.cycle sim inputs) with e -> Raised (Printexc.to_string e)

let obs_peek sim name =
  try Ok_out [ (name, Sim.peek sim name) ]
  with e -> Raised (Printexc.to_string e)

let pp_obs fmt = function
  | Ok_out kvs ->
    List.iter (fun (n, v) -> Format.fprintf fmt "%s=%a " n Bitvec.pp v) kvs
  | Raised msg -> Format.fprintf fmt "raised %s" msg

let obs_t = Alcotest.testable pp_obs ( = )

(* Drive both engines with the same inputs for [cycles] cycles and hold
   them to identical outputs, peeks, memory contents and VCD dumps. *)
let diff_design ?(cycles = 50) ~seed name (design : Netlist.elaborated) =
  let st = Random.State.make [| seed |] in
  let sim_c = Sim.create ~engine:`Compiled design in
  let sim_i = Sim.create ~engine:`Interp design in
  Alcotest.(check bool) (name ^ ": default is compiled") true
    (Sim.engine (Sim.create design) = `Compiled);
  let buf_c = Buffer.create 1024 and buf_i = Buffer.create 1024 in
  let vcd_c = Vcd.create buf_c design sim_c in
  let vcd_i = Vcd.create buf_i design sim_i in
  let signals = Netlist.signal_names design in
  let check_state tag =
    List.iter
      (fun s ->
        Alcotest.check obs_t
          (Printf.sprintf "%s: %s peek %s" name tag s)
          (obs_peek sim_i s) (obs_peek sim_c s))
      signals;
    List.iter
      (fun m ->
        for i = 0 to m.Netlist.mem_size - 1 do
          Alcotest.check bv
            (Printf.sprintf "%s: %s mem %s[%d]" name tag m.Netlist.mem_name i)
            (Sim.peek_mem sim_i m.Netlist.mem_name i)
            (Sim.peek_mem sim_c m.Netlist.mem_name i)
        done)
      design.Netlist.e_mems
  in
  check_state "post-reset";
  for c = 1 to cycles do
    let inputs =
      List.map
        (fun p ->
          (p.Netlist.port_name, Bitvec.random st ~width:p.Netlist.port_width))
        design.Netlist.e_inputs
    in
    let out_i = obs_cycle sim_i inputs in
    let out_c = obs_cycle sim_c inputs in
    Alcotest.check obs_t
      (Printf.sprintf "%s: cycle %d outputs" name c)
      out_i out_c;
    Vcd.sample vcd_i;
    Vcd.sample vcd_c;
    if c mod 10 = 0 || c = cycles then
      check_state (Printf.sprintf "cycle %d" c)
  done;
  Alcotest.(check string)
    (name ^ ": VCD identical")
    (Buffer.contents buf_i) (Buffer.contents buf_c);
  (* Reset returns both engines to the same initial state. *)
  Sim.reset sim_c;
  Sim.reset sim_i;
  check_state "post-second-reset"

(* --- random netlist generation ------------------------------------------ *)

(* Width pool straddling the Bitvec.Unboxed fast-path boundary (62). *)
let width_pool = [| 1; 2; 3; 5; 8; 12; 16; 31; 32; 33; 48; 61; 62; 63; 64; 96 |]

let pick st arr = arr.(Random.State.int st (Array.length arr))
let pick_width st = pick st width_pool

type env = {
  signals : (string * int) list; (* name, width *)
  mems : (string * int * int) list; (* name, word width, size *)
}

let coerce e we w =
  if we = w then e
  else if we > w then Expr.Slice (e, w - 1, 0)
  else Expr.Zext (e, w)

(* A leaf of exactly width [w]: a constant, or a signal coerced to fit. *)
let leaf env st w =
  let candidates = List.filter (fun (_, ws) -> ws = w) env.signals in
  if candidates <> [] && Random.State.bool st then
    Expr.Signal (fst (pick st (Array.of_list candidates)))
  else if env.signals <> [] && Random.State.int st 3 > 0 then
    let n, ws = pick st (Array.of_list env.signals) in
    coerce (Expr.Signal n) ws w
  else Expr.Const (Bitvec.random st ~width:w)

let rec gen env st depth w =
  if depth <= 0 then leaf env st w
  else
    let g d w = gen env st d w in
    let d = depth - 1 in
    match Random.State.int st 13 with
    | 0 -> leaf env st w
    | 1 ->
      let op =
        pick st [| Expr.Add; Expr.Sub; Expr.Mul; Expr.And; Expr.Or; Expr.Xor |]
      in
      Expr.Binop (op, g d w, g d w)
    | 2 ->
      (* Division with a guaranteed non-zero divisor (both engines raise
         Division_by_zero identically, but mid-settle exceptions leave
         partial state we don't want to compare). *)
      let op = pick st [| Expr.Udiv; Expr.Urem; Expr.Sdiv; Expr.Srem |] in
      let divisor =
        Expr.Binop (Expr.Or, g d w, Expr.Const (Bitvec.one w))
      in
      Expr.Binop (op, g d w, divisor)
    | 3 ->
      (* Shift by a dynamic amount of arbitrary width, including >62-bit
         amounts that exercise the saturation path. *)
      let op = pick st [| Expr.Shl; Expr.Lshr; Expr.Ashr |] in
      let amt_w = if Random.State.int st 4 = 0 then pick_width st else 1 + Random.State.int st 7 in
      Expr.Binop (op, g d w, g d amt_w)
    | 4 ->
      let op =
        pick st [| Expr.Eq; Expr.Ne; Expr.Ult; Expr.Ule; Expr.Slt; Expr.Sle |]
      in
      let wc = pick_width st in
      coerce (Expr.Binop (op, g d wc, g d wc)) 1 w
    | 5 -> Expr.Mux (g d 1, g d w, g d w)
    | 6 -> Expr.Unop (pick st [| Expr.Not; Expr.Neg |], g d w)
    | 7 ->
      let op = pick st [| Expr.Red_and; Expr.Red_or; Expr.Red_xor |] in
      coerce (Expr.Unop (op, g d (pick_width st))) 1 w
    | 8 ->
      let wa = w + 1 + Random.State.int st 8 in
      let lo = Random.State.int st (wa - w + 1) in
      Expr.Slice (g d wa, lo + w - 1, lo)
    | 9 ->
      if w < 2 then leaf env st w
      else
        let w1 = 1 + Random.State.int st (w - 1) in
        Expr.Concat [ g d (w - w1); g d w1 ]
    | 10 ->
      let wa = 1 + Random.State.int st w in
      if Random.State.bool st then Expr.Zext (g d wa, w)
      else Expr.Sext (g d wa, w)
    | 11 when w mod 2 = 0 && Random.State.bool st ->
      Expr.Repeat (g d (w / 2), 2)
    | _ -> (
      match env.mems with
      | [] -> leaf env st w
      | mems ->
        let m, ww, size = pick st (Array.of_list mems) in
        (* Any address width is legal on reads; out-of-range and >62-bit
           addresses must read as zero in both engines. *)
        let aw =
          if Random.State.int st 5 = 0 then pick_width st
          else address_width size + Random.State.int st 2
        in
        coerce (Expr.Mem_read (m, g d aw)) ww w)

let gen_netlist ~seed =
  let st = Random.State.make [| seed |] in
  let n_inputs = 2 + Random.State.int st 3 in
  let inputs =
    List.init n_inputs (fun i ->
        { Netlist.port_name = Printf.sprintf "in%d" i;
          port_width = pick_width st })
  in
  let n_mems = Random.State.int st 3 in
  let mems_meta =
    List.init n_mems (fun i ->
        let word = if Random.State.int st 4 = 0 then 70 else pick_width st in
        let size = pick st [| 4; 8; 16 |] in
        (Printf.sprintf "m%d" i, word, size))
  in
  let n_regs = 1 + Random.State.int st 3 in
  let regs_meta =
    List.init n_regs (fun i -> (Printf.sprintf "r%d" i, pick_width st))
  in
  let base_env =
    {
      signals =
        List.map (fun p -> (p.Netlist.port_name, p.Netlist.port_width)) inputs
        @ regs_meta;
      mems = mems_meta;
    }
  in
  (* Wires reference only inputs, registers and earlier wires, so the
     combinational graph is acyclic by construction. *)
  let n_wires = 2 + Random.State.int st 5 in
  let env, rev_wires =
    List.fold_left
      (fun (env, acc) i ->
        let name = Printf.sprintf "w%d" i in
        let w = pick_width st in
        let e = gen env st (1 + Random.State.int st 3) w in
        ({ env with signals = (name, w) :: env.signals }, (name, e) :: acc))
      (base_env, [])
      (List.init n_wires (fun i -> i))
  in
  let wires = List.rev rev_wires in
  (* Register next/enables may reference anything, including wires. *)
  let regs =
    List.map
      (fun (name, w) ->
        let enable =
          if Random.State.int st 3 = 0 then Some (gen env st 2 1) else None
        in
        {
          Netlist.reg_name = name;
          reg_width = w;
          init = Bitvec.random st ~width:w;
          next = gen env st (1 + Random.State.int st 3) w;
          enable;
        })
      regs_meta
  in
  let mems =
    List.map
      (fun (name, word, size) ->
        let n_ports = 1 + Random.State.int st 2 in
        let writes =
          List.init n_ports (fun _ ->
              {
                Netlist.wr_enable = gen env st 2 1;
                wr_addr = gen env st 2 (address_width size);
                wr_data = gen env st 2 word;
              })
        in
        let mem_init =
          if Random.State.bool st then
            Some (Array.init size (fun _ -> Bitvec.random st ~width:word))
          else None
        in
        { Netlist.mem_name = name; word_width = word; mem_size = size;
          writes; mem_init })
      mems_meta
  in
  let outputs =
    List.init (1 + Random.State.int st 3) (fun i ->
        let w = pick_width st in
        (Printf.sprintf "out%d" i, gen env st (1 + Random.State.int st 3) w))
  in
  Netlist.elaborate
    {
      Netlist.name = Printf.sprintf "fuzz%d" seed;
      inputs;
      outputs;
      wires;
      regs;
      mems;
      instances = [];
    }

let test_random_netlists () =
  for seed = 1 to 25 do
    diff_design ~seed ~cycles:50
      (Printf.sprintf "fuzz%d" seed)
      (gen_netlist ~seed)
  done

(* --- every design in lib/designs ---------------------------------------- *)

let test_designs () =
  let fir = Fir.make ~taps:[ 1; 2; 3; 2; 1 ] () in
  diff_design ~seed:101 "fir" fir.Fir.rtl;
  let alu = Alu.make ~width:8 () in
  diff_design ~seed:102 "alu" alu.Alu.rtl;
  let gcd = Gcd.make ~width:8 in
  diff_design ~seed:103 "gcd" gcd.Gcd.rtl;
  let uart = Uart.make ~baud_div:4 () in
  diff_design ~seed:104 "uart" uart.Uart.rtl;
  let conv = Conv_image.make ~kernel:Conv_image.sharpen ~shift:0 () in
  diff_design ~seed:105 "conv_window" conv.Conv_image.rtl_window;
  diff_design ~seed:106 "conv_stream" (Conv_image.rtl_stream conv ~width:8);
  let chain = Image_chain.make () in
  diff_design ~seed:107 "image_chain" chain.Image_chain.rtl_top;
  let cfg = Memsys.default_config in
  diff_design ~seed:108 ~cycles:200 "memsys_simple" (Memsys.rtl_simple cfg);
  diff_design ~seed:109 ~cycles:200 "memsys_cached" (Memsys.rtl_cached cfg)

(* --- unboxed fast path vs boxed Bitvec ---------------------------------- *)

let test_unboxed_ops () =
  let module U = Bitvec.Unboxed in
  let st = Random.State.make [| 42 |] in
  for _ = 1 to 2000 do
    let w = 1 + Random.State.int st U.max_width in
    let a = Bitvec.random st ~width:w and b = Bitvec.random st ~width:w in
    let ia = U.of_bitvec a and ib = U.of_bitvec b in
    let chk name expected got =
      Alcotest.check bv (Printf.sprintf "%s w=%d" name w) expected
        (U.to_bitvec ~width:w got)
    in
    chk "add" (Bitvec.add a b) (U.add w ia ib);
    chk "sub" (Bitvec.sub a b) (U.sub w ia ib);
    chk "neg" (Bitvec.neg a) (U.neg w ia);
    chk "mul" (Bitvec.mul a b) (U.mul w ia ib);
    chk "and" (Bitvec.logand a b) (U.logand ia ib);
    chk "or" (Bitvec.logor a b) (U.logor ia ib);
    chk "xor" (Bitvec.logxor a b) (U.logxor ia ib);
    chk "not" (Bitvec.lognot a) (U.lognot w ia);
    if not (Bitvec.is_zero b) then begin
      chk "udiv" (Bitvec.udiv a b) (U.udiv ia ib);
      chk "urem" (Bitvec.urem a b) (U.urem ia ib);
      chk "sdiv" (Bitvec.sdiv a b) (U.sdiv w ia ib);
      chk "srem" (Bitvec.srem a b) (U.srem w ia ib)
    end;
    let n = Random.State.int st (w + 1) in
    chk "shl" (Bitvec.shift_left a n) (U.shift_left w ia n);
    chk "lshr" (Bitvec.shift_right_logical a n) (U.shift_right_logical ia n);
    chk "ashr" (Bitvec.shift_right_arith a n) (U.shift_right_arith w ia n);
    let chkb name expected got =
      Alcotest.(check bool) (Printf.sprintf "%s w=%d" name w) expected got
    in
    chkb "red_and" (Bitvec.reduce_and a) (U.reduce_and w ia);
    chkb "red_or" (Bitvec.reduce_or a) (U.reduce_or ia);
    chkb "red_xor" (Bitvec.reduce_xor a) (U.reduce_xor ia);
    chkb "ult" (Bitvec.ult a b) (U.ult ia ib);
    chkb "ule" (Bitvec.ule a b) (U.ule ia ib);
    chkb "slt" (Bitvec.slt a b) (U.slt w ia ib);
    chkb "sle" (Bitvec.sle a b) (U.sle w ia ib);
    let lo = Random.State.int st w in
    let hi = lo + Random.State.int st (w - lo) in
    chk "select"
      (Bitvec.uresize (Bitvec.select a ~hi ~lo) w)
      (U.select ~hi ~lo ia);
    let wider = min U.max_width (w + Random.State.int st 4) in
    Alcotest.check bv
      (Printf.sprintf "sext w=%d->%d" w wider)
      (Bitvec.sresize a wider)
      (U.to_bitvec ~width:wider (U.sext ~from:w ~width:wider ia))
  done

(* --- error-path parity --------------------------------------------------- *)

let mini_design () =
  Netlist.elaborate
    {
      Netlist.name = "mini";
      inputs = [ { port_name = "a"; port_width = 4 } ];
      outputs = [ ("y", Expr.Signal "w") ];
      wires = [ ("w", Expr.(Binop (Add, Signal "a", Signal "r"))) ];
      regs =
        [ { reg_name = "r"; reg_width = 4; init = Bitvec.zero 4;
            next = Expr.Signal "w"; enable = None } ];
      mems = [];
      instances = [];
    }

let test_input_errors () =
  List.iter
    (fun engine ->
      let sim = Sim.create ~engine (mini_design ()) in
      let exn f = try f (); "no exception" with e -> Printexc.to_string e in
      Alcotest.(check string) "missing input"
        (exn (fun () -> ignore (Sim.cycle sim [])))
        "Invalid_argument(\"Sim.cycle: missing input a\")";
      Alcotest.(check string) "wrong width"
        (exn (fun () -> ignore (Sim.cycle sim [ ("a", Bitvec.zero 5) ])))
        "Invalid_argument(\"Sim.cycle: input a has width 5, expected 4\")";
      Alcotest.(check string) "unknown port"
        (exn (fun () ->
             ignore
               (Sim.cycle sim [ ("a", Bitvec.zero 4); ("bogus", Bitvec.zero 1) ])))
        "Invalid_argument(\"Sim.cycle: no input port named bogus\")";
      Alcotest.(check string) "peek unknown"
        (exn (fun () -> ignore (Sim.peek sim "nope")))
        "Not_found";
      Alcotest.(check string) "peek unsettled wire"
        (exn (fun () -> ignore (Sim.peek sim "w")))
        "Invalid_argument(\"Sim.peek: wire w not settled yet\")";
      (* Duplicate input: first occurrence wins in both engines. *)
      let out =
        Sim.cycle sim
          [ ("a", Bitvec.create ~width:4 3); ("a", Bitvec.create ~width:4 9) ]
      in
      Alcotest.check bv "dup input first wins"
        (Bitvec.create ~width:4 3)
        (List.assoc "y" out))
    [ `Compiled; `Interp ]

let test_combinational_cycle () =
  (* Hand-assembled record with a wire cycle: the compiled engine must
     reject it at create instead of silently mis-settling. *)
  let design =
    {
      Netlist.e_name = "cyc";
      e_inputs = [ { port_name = "a"; port_width = 4 } ];
      e_outputs = [ ("y", Expr.Signal "w0") ];
      e_wires =
        [ ("w0", Expr.(Binop (Add, Signal "a", Signal "w1")));
          ("w1", Expr.(Binop (Xor, Signal "w0", Signal "a"))) ];
      e_regs = [];
      e_mems = [];
      e_signal_width = (fun _ -> 4);
    }
  in
  Alcotest.check_raises "cycle rejected"
    (Netlist.Elaboration_error "combinational cycle through wire w0")
    (fun () -> ignore (Sim.create design))

let test_levelizes_unsorted_wires () =
  (* Wires listed in reverse dependency order: the compiled engine
     re-levelizes and still settles correctly. *)
  let design =
    {
      Netlist.e_name = "unsorted";
      e_inputs = [ { Netlist.port_name = "a"; port_width = 8 } ];
      e_outputs = [ ("y", Expr.Signal "w1") ];
      e_wires =
        [ ("w1", Expr.(Binop (Add, Signal "w0", Signal "a")));
          ("w0", Expr.(Binop (Xor, Signal "a", Const (Bitvec.ones 8)))) ];
      e_regs = [];
      e_mems = [];
      e_signal_width = (fun _ -> 8);
    }
  in
  let sim = Sim.create design in
  let a = Bitvec.create ~width:8 5 in
  let out = Sim.cycle sim [ ("a", a) ] in
  Alcotest.check bv "levelized result"
    (Bitvec.add (Bitvec.logxor a (Bitvec.ones 8)) a)
    (List.assoc "y" out)

let test_wide_write_address () =
  (* Regression for the Sim.clock_edge wide-address crash: a 64-bit
     write address cannot be in range of any memory, so the write must
     be discarded — in both engines — exactly as Mem_read treats wide
     read addresses.  Only reachable through a hand-built record, since
     elaborate forces wr_addr to the address width. *)
  let wide_addr = Expr.Const (Bitvec.create ~width:64 (-1)) in
  let design =
    {
      Netlist.e_name = "wide_wr";
      e_inputs = [ { Netlist.port_name = "d"; port_width = 8 } ];
      e_outputs = [ ("y", Expr.(Mem_read ("m", Const (Bitvec.zero 2)))) ];
      e_wires = [];
      e_regs = [];
      e_mems =
        [ { Netlist.mem_name = "m"; word_width = 8; mem_size = 4;
            writes =
              [ { Netlist.wr_enable = Expr.Const (Bitvec.one 1);
                  wr_addr = wide_addr;
                  wr_data = Expr.Signal "d" } ];
            mem_init = None } ];
      e_signal_width = (fun _ -> 8);
    }
  in
  List.iter
    (fun engine ->
      let sim = Sim.create ~engine design in
      let d = Bitvec.create ~width:8 0xab in
      (* Before the fix this raised Failure("Bitvec.to_int: value too
         wide") out of the interpreter's clock_edge. *)
      let out = Sim.cycle sim [ ("d", d) ] in
      Alcotest.check bv "memory untouched" (Bitvec.zero 8)
        (List.assoc "y" out);
      for i = 0 to 3 do
        Alcotest.check bv
          (Printf.sprintf "word %d still zero" i)
          (Bitvec.zero 8) (Sim.peek_mem sim "m" i)
      done)
    [ `Compiled; `Interp ]

let suite =
  [
    Alcotest.test_case "random netlists: compiled = interp" `Quick
      test_random_netlists;
    Alcotest.test_case "designs: compiled = interp" `Quick test_designs;
    Alcotest.test_case "unboxed ops match Bitvec" `Quick test_unboxed_ops;
    Alcotest.test_case "input/peek error parity" `Quick test_input_errors;
    Alcotest.test_case "combinational cycle rejected" `Quick
      test_combinational_cycle;
    Alcotest.test_case "unsorted wires re-levelized" `Quick
      test_levelizes_unsorted_wires;
    Alcotest.test_case "wide write address discarded" `Quick
      test_wide_write_address;
  ]
