(* Tests for the SLM kernel: scheduling, delta semantics, signals,
   FIFOs, clocks. *)

open Dfv_slm

let check_int = Alcotest.check Alcotest.int
let check_bool = Alcotest.check Alcotest.bool
let check_list = Alcotest.check (Alcotest.list Alcotest.string)
let check_ints = Alcotest.check (Alcotest.list Alcotest.int)

let test_thread_runs () =
  let k = Kernel.create () in
  let hit = ref false in
  Kernel.thread k ~name:"t" (fun () -> hit := true);
  Kernel.run k;
  check_bool "thread ran" true !hit

let test_wait_time_ordering () =
  let k = Kernel.create () in
  let log = ref [] in
  let say s = log := s :: !log in
  Kernel.thread k ~name:"a" (fun () ->
      Kernel.wait_time k 10;
      say "a@10";
      Kernel.wait_time k 20;
      say "a@30");
  Kernel.thread k ~name:"b" (fun () ->
      Kernel.wait_time k 15;
      say "b@15");
  Kernel.run k;
  check_list "order" [ "a@10"; "b@15"; "a@30" ] (List.rev !log);
  check_int "final time" 30 (Kernel.now k)

let test_event_notify () =
  let k = Kernel.create () in
  let e = Kernel.event k "go" in
  let log = ref [] in
  Kernel.thread k ~name:"waiter" (fun () ->
      Kernel.wait_event e;
      log := "woke" :: !log);
  Kernel.thread k ~name:"notifier" (fun () ->
      Kernel.wait_time k 5;
      Kernel.notify e);
  Kernel.run k;
  check_list "woke" [ "woke" ] !log;
  check_int "time" 5 (Kernel.now k)

let test_notify_in () =
  let k = Kernel.create () in
  let e = Kernel.event k "later" in
  let woke_at = ref (-1) in
  Kernel.thread k ~name:"w" (fun () ->
      Kernel.wait_event e;
      woke_at := Kernel.now k);
  Kernel.notify_in e 42;
  Kernel.run k;
  check_int "woke at 42" 42 !woke_at

let test_wait_any () =
  let k = Kernel.create () in
  let e1 = Kernel.event k "e1" and e2 = Kernel.event k "e2" in
  let wakes = ref 0 in
  Kernel.thread k ~name:"w" (fun () ->
      Kernel.wait_any [ e1; e2 ];
      incr wakes);
  Kernel.notify_in e2 3;
  Kernel.notify_in e1 7;
  Kernel.run k;
  (* Woken once by e2; e1's later firing must not resume it again. *)
  check_int "single wake" 1 !wakes

let test_method_sensitivity () =
  let k = Kernel.create () in
  let e = Kernel.event k "tick" in
  let runs = ref 0 in
  Kernel.method_ k ~name:"m" ~sensitive:[ e ] (fun () -> incr runs);
  Kernel.thread k ~name:"driver" (fun () ->
      for _ = 1 to 4 do
        Kernel.wait_time k 10;
        Kernel.notify e
      done);
  Kernel.run k;
  (* One initial run + 4 notifications. *)
  check_int "runs" 5 !runs

let test_wait_outside_thread () =
  let k = Kernel.create () in
  let e = Kernel.event k "x" in
  check_bool "raises" true
    (match Kernel.wait_event e with
    | exception Kernel.Not_in_thread -> true
    | () -> false)

let test_stop () =
  let k = Kernel.create () in
  let count = ref 0 in
  Kernel.thread k ~name:"loop" (fun () ->
      while true do
        Kernel.wait_time k 1;
        incr count;
        if !count = 5 then Kernel.stop k
      done);
  Kernel.run k;
  check_int "stopped after 5" 5 !count

let test_run_until () =
  let k = Kernel.create () in
  let count = ref 0 in
  Kernel.thread k ~name:"loop" (fun () ->
      while true do
        Kernel.wait_time k 10;
        incr count
      done);
  Kernel.run ~until:100 k;
  check_int "ten ticks" 10 !count;
  (* Resume: the kernel can keep going. *)
  Kernel.run ~until:150 k;
  check_int "five more" 15 !count

let test_blocked_threads () =
  let k = Kernel.create () in
  let e = Kernel.event k "never" in
  Kernel.thread k ~name:"starved" (fun () -> Kernel.wait_event e);
  Kernel.thread k ~name:"done" (fun () -> ());
  Kernel.run k;
  check_list "starved listed" [ "starved" ] (Kernel.blocked_threads k)

(* --- signals ----------------------------------------------------------- *)

let test_signal_delta_semantics () =
  let k = Kernel.create () in
  let s = Signal.create k "s" ~init:0 in
  let seen_in_same_delta = ref (-1) in
  let seen_after = ref (-1) in
  Kernel.thread k ~name:"writer" (fun () ->
      Signal.write s 7;
      (* Not yet committed within the same evaluation phase. *)
      seen_in_same_delta := Signal.read s;
      Kernel.wait_delta k;
      seen_after := Signal.read s);
  Kernel.run k;
  check_int "read-before-update" 0 !seen_in_same_delta;
  check_int "read-after-delta" 7 !seen_after

let test_signal_changed_event () =
  let k = Kernel.create () in
  let s = Signal.create k "s" ~init:0 in
  let changes = ref 0 in
  Kernel.method_ k ~name:"observer" ~sensitive:[ Signal.changed s ] (fun () ->
      incr changes);
  Kernel.thread k ~name:"writer" (fun () ->
      Kernel.wait_time k 1;
      Signal.write s 1;
      Kernel.wait_time k 1;
      Signal.write s 1 (* same value: no change event *);
      Kernel.wait_time k 1;
      Signal.write s 2);
  Kernel.run k;
  (* initial run + change-to-1 + change-to-2 *)
  check_int "changes observed" 3 !changes

let test_signal_last_write_wins () =
  let k = Kernel.create () in
  let s = Signal.create k "s" ~init:0 in
  Kernel.thread k ~name:"w" (fun () ->
      Signal.write s 1;
      Signal.write s 2;
      Signal.write s 3);
  Kernel.run k;
  check_int "last wins" 3 (Signal.read s)

(* --- fifos -------------------------------------------------------------- *)

let test_fifo_producer_consumer () =
  let k = Kernel.create () in
  let f = Fifo.create k "f" ~capacity:2 in
  let produced = List.init 20 (fun i -> i) in
  let consumed = ref [] in
  Kernel.thread k ~name:"producer" (fun () ->
      List.iter (fun v -> Fifo.write f v) produced);
  Kernel.thread k ~name:"consumer" (fun () ->
      for _ = 1 to 20 do
        consumed := Fifo.read f :: !consumed
      done);
  Kernel.run k;
  check_ints "all values in order" produced (List.rev !consumed);
  check_list "no one starved" [] (Kernel.blocked_threads k)

let test_fifo_blocking_write () =
  let k = Kernel.create () in
  let f = Fifo.create k "f" ~capacity:1 in
  let writes_done = ref 0 in
  Kernel.thread k ~name:"producer" (fun () ->
      Fifo.write f 1;
      incr writes_done;
      Fifo.write f 2;
      incr writes_done);
  Kernel.thread k ~name:"slow-consumer" (fun () ->
      Kernel.wait_time k 100;
      ignore (Fifo.read f);
      ignore (Fifo.read f));
  Kernel.run k;
  check_int "both writes completed" 2 !writes_done;
  check_int "time advanced to consumer" 100 (Kernel.now k)

let test_fifo_try_ops () =
  let k = Kernel.create () in
  let f = Fifo.create k "f" ~capacity:1 in
  check_bool "try_read empty" true (Fifo.try_read f = None);
  check_bool "try_write ok" true (Fifo.try_write f 5);
  check_bool "try_write full" false (Fifo.try_write f 6);
  check_int "length" 1 (Fifo.length f);
  check_bool "try_read value" true (Fifo.try_read f = Some 5)

(* --- clocks ------------------------------------------------------------- *)

let test_clock () =
  let k = Kernel.create () in
  let clk = Clock.create k "clk" ~period:10 in
  let samples = ref [] in
  Kernel.thread k ~name:"sampler" (fun () ->
      for _ = 1 to 5 do
        Clock.wait_posedge clk;
        samples := Kernel.now k :: !samples
      done);
  Kernel.run ~until:200 k;
  check_ints "posedges at multiples of period" [ 10; 20; 30; 40; 50 ]
    (List.rev !samples);
  check_int "clock cycles counted" 20 (Clock.cycles clk)

let test_two_clocks_ratio () =
  let k = Kernel.create () in
  let fast = Clock.create k "fast" ~period:5 in
  let slow = Clock.create k "slow" ~period:20 in
  let fast_ticks = ref 0 and slow_ticks = ref 0 in
  Kernel.thread k ~name:"f" (fun () ->
      while true do
        Clock.wait_posedge fast;
        incr fast_ticks
      done);
  Kernel.thread k ~name:"s" (fun () ->
      while true do
        Clock.wait_posedge slow;
        incr slow_ticks
      done);
  Kernel.run ~until:100 k;
  check_int "fast" 20 !fast_ticks;
  check_int "slow" 5 !slow_ticks

(* --- watchdogs ----------------------------------------------------------- *)

(* Two threads delta-notifying each other spin forever without advancing
   time — the runaway a watchdog exists to catch.  The trip must name the
   culprit processes. *)
let ping_pong_kernel () =
  let k = Kernel.create () in
  let ea = Kernel.event k "ea" and eb = Kernel.event k "eb" in
  Kernel.thread k ~name:"ping" (fun () ->
      while true do
        Kernel.notify eb;
        Kernel.wait_event ea
      done);
  Kernel.thread k ~name:"pong" (fun () ->
      while true do
        Kernel.wait_event eb;
        Kernel.notify ea
      done);
  k

let test_watchdog_delta_limit () =
  let k = ping_pong_kernel () in
  match Kernel.run ~watchdog:(Kernel.watchdog ~max_deltas:100 ()) k with
  | () -> Alcotest.fail "runaway delta loop terminated?!"
  | exception Kernel.Watchdog_trip t ->
    check_bool "delta kind" true (t.Kernel.trip_kind = Kernel.Delta_limit);
    check_int "no time progress" 0 t.Kernel.trip_time;
    check_bool "deltas at limit" true (t.Kernel.trip_deltas >= 100);
    check_bool "ping named" true (List.mem "ping" t.Kernel.trip_processes);
    check_bool "pong named" true (List.mem "pong" t.Kernel.trip_processes)

let test_watchdog_activation_limit () =
  let k = ping_pong_kernel () in
  match Kernel.run ~watchdog:(Kernel.watchdog ~max_activations:64 ()) k with
  | () -> Alcotest.fail "runaway loop terminated?!"
  | exception Kernel.Watchdog_trip t ->
    check_bool "activation kind" true
      (t.Kernel.trip_kind = Kernel.Activation_limit);
    check_bool "activations at limit" true (t.Kernel.trip_activations >= 64);
    check_bool "both processes named" true
      (List.mem "ping" t.Kernel.trip_processes
      && List.mem "pong" t.Kernel.trip_processes)

let test_watchdog_starvation () =
  (* A two-process wait cycle: each thread parks on an event only the
     other could fire.  With [expect_idle] the watchdog reports the
     deadlock and names both threads. *)
  let k = Kernel.create () in
  let e1 = Kernel.event k "e1" and e2 = Kernel.event k "e2" in
  Kernel.thread k ~name:"t1" (fun () ->
      Kernel.wait_event e1;
      Kernel.notify e2);
  Kernel.thread k ~name:"t2" (fun () ->
      Kernel.wait_event e2;
      Kernel.notify e1);
  match Kernel.run ~watchdog:(Kernel.watchdog ~expect_idle:true ()) k with
  | () -> Alcotest.fail "deadlocked kernel drained?!"
  | exception Kernel.Watchdog_trip t ->
    check_bool "starvation kind" true (t.Kernel.trip_kind = Kernel.Starvation);
    check_list "both blocked threads named" [ "t1"; "t2" ]
      (List.sort compare t.Kernel.trip_processes)

let test_watchdog_clean_run () =
  (* A healthy model under the same guards: no trip, and the limits are
     per-run, so a second run gets a fresh allowance. *)
  let k = Kernel.create () in
  let f = Fifo.create k "f" ~capacity:2 in
  Kernel.thread k ~name:"producer" (fun () ->
      for i = 1 to 8 do
        Fifo.write f i
      done);
  Kernel.thread k ~name:"consumer" (fun () ->
      for _ = 1 to 8 do
        ignore (Fifo.read f)
      done);
  let wd = Kernel.watchdog ~max_deltas:1000 ~expect_idle:true () in
  Kernel.run ~watchdog:wd k;
  Kernel.run ~watchdog:wd k;
  check_bool "drained" true (Kernel.blocked_threads k = [])

let test_kernel_stats () =
  let k = Kernel.create () in
  Kernel.thread k ~name:"t" (fun () ->
      for _ = 1 to 10 do
        Kernel.wait_time k 1
      done);
  Kernel.run k;
  check_bool "deltas counted" true (Kernel.delta_count k >= 10);
  check_bool "activations counted" true (Kernel.activations k >= 11)

let suite =
  [ Alcotest.test_case "thread runs" `Quick test_thread_runs;
    Alcotest.test_case "wait_time ordering" `Quick test_wait_time_ordering;
    Alcotest.test_case "event notify" `Quick test_event_notify;
    Alcotest.test_case "notify_in" `Quick test_notify_in;
    Alcotest.test_case "wait_any single wake" `Quick test_wait_any;
    Alcotest.test_case "method sensitivity" `Quick test_method_sensitivity;
    Alcotest.test_case "wait outside thread" `Quick test_wait_outside_thread;
    Alcotest.test_case "stop" `Quick test_stop;
    Alcotest.test_case "run ~until resumable" `Quick test_run_until;
    Alcotest.test_case "blocked threads" `Quick test_blocked_threads;
    Alcotest.test_case "signal delta semantics" `Quick
      test_signal_delta_semantics;
    Alcotest.test_case "signal changed event" `Quick test_signal_changed_event;
    Alcotest.test_case "signal last write wins" `Quick
      test_signal_last_write_wins;
    Alcotest.test_case "fifo producer/consumer" `Quick
      test_fifo_producer_consumer;
    Alcotest.test_case "fifo blocking write" `Quick test_fifo_blocking_write;
    Alcotest.test_case "fifo try ops" `Quick test_fifo_try_ops;
    Alcotest.test_case "clock" `Quick test_clock;
    Alcotest.test_case "two clocks" `Quick test_two_clocks_ratio;
    Alcotest.test_case "watchdog delta limit" `Quick test_watchdog_delta_limit;
    Alcotest.test_case "watchdog activation limit" `Quick
      test_watchdog_activation_limit;
    Alcotest.test_case "watchdog starvation" `Quick test_watchdog_starvation;
    Alcotest.test_case "watchdog clean run" `Quick test_watchdog_clean_run;
    Alcotest.test_case "kernel stats" `Quick test_kernel_stats ]
