(* Tests for the fault-injection subsystem: fault enumeration, cone
   localization, and campaign resilience (a crashing mutant must be
   recorded, not abort the run). *)

open Dfv_rtl
open Dfv_fault

let check_int = Alcotest.check Alcotest.int
let check_bool = Alcotest.check Alcotest.bool

let alu_pair () =
  let t = Dfv_designs.Alu.make ~width:8 () in
  Dfv_core.Pair.create ~name:"alu" ~slm:t.Dfv_designs.Alu.slm
    ~rtl:t.Dfv_designs.Alu.rtl ~spec:t.Dfv_designs.Alu.spec

let budget =
  Some { Dfv_sat.Solver.max_conflicts = Some 200_000; max_seconds = None }

let test_enumerate_rtl () =
  let pair = alu_pair () in
  let faults = Fault.enumerate_rtl ~max_faults:24 pair.Dfv_core.Pair.rtl in
  check_bool "non-empty" true (faults <> []);
  check_bool "bounded" true (List.length faults <= 24);
  (* Names are unique, and every mutant still elaborates with the same
     interface (the width-preservation contract). *)
  let names = List.map (fun f -> f.Fault.rf_name) faults in
  check_int "unique names" (List.length names)
    (List.length (List.sort_uniq compare names));
  List.iter
    (fun f ->
      let m = f.Fault.rf_apply pair.Dfv_core.Pair.rtl in
      check_bool (f.Fault.rf_name ^ " keeps ports") true
        (m.Netlist.e_inputs = pair.Dfv_core.Pair.rtl.Netlist.e_inputs
        && List.map fst m.Netlist.e_outputs
           = List.map fst pair.Dfv_core.Pair.rtl.Netlist.e_outputs))
    faults

let test_enumerate_slm_reachable_only () =
  let pair = alu_pair () in
  let faults = Fault.enumerate_slm ~max_faults:12 pair.Dfv_core.Pair.slm in
  check_bool "non-empty" true (faults <> []);
  (* Every mutant still typechecks: mutations are type-preserving. *)
  List.iter
    (fun f ->
      match
        Dfv_hwir.Typecheck.check (f.Fault.sf_apply pair.Dfv_core.Pair.slm)
      with
      | () -> ()
      | exception Dfv_hwir.Typecheck.Type_error m ->
        Alcotest.failf "%s broke typing: %s" f.Fault.sf_name m)
    faults;
  (* Mutations in dead functions are guaranteed survivors, so the
     enumerator must skip functions unreachable from the entry. *)
  let open Dfv_hwir.Ast in
  let dead =
    {
      fname = "dead_helper";
      params = [ ("x", uint 8) ];
      ret = uint 8;
      locals = [];
      body = [ Return (var "x" +^ u 8 1) ];
    }
  in
  let p =
    { pair.Dfv_core.Pair.slm with
      funcs = dead :: pair.Dfv_core.Pair.slm.funcs }
  in
  List.iter
    (fun f ->
      check_bool "no dead-code mutants" false (f.Fault.sf_site = "dead_helper"))
    (Fault.enumerate_slm ~max_faults:100 p)

let test_cone () =
  (* out1 depends on w1 and a; out2 on b only. *)
  let open Expr in
  let rtl =
    Netlist.elaborate
      {
        (Netlist.empty "cones") with
        Netlist.inputs =
          [ { Netlist.port_name = "a"; port_width = 8 };
            { Netlist.port_name = "b"; port_width = 8 } ];
        wires = [ ("w1", sig_ "a" +: const ~width:8 1) ];
        outputs = [ ("out1", sig_ "w1"); ("out2", sig_ "b") ];
      }
  in
  check_bool "w1 in out1 cone" true (Fault.cone rtl ~output:"out1" "w1");
  check_bool "a in out1 cone" true (Fault.cone rtl ~output:"out1" "a");
  check_bool "b outside out1 cone" false (Fault.cone rtl ~output:"out1" "b");
  check_bool "w1 outside out2 cone" false (Fault.cone rtl ~output:"out2" "w1");
  check_bool "output is its own cone" true (Fault.cone rtl ~output:"out2" "out2")

let test_alu_campaign_gate () =
  (* The acceptance property in miniature: every injected ALU fault is
     detected and localized; the prover never certifies a mutant. *)
  let r =
    Campaign.run ?budget ~max_rtl_faults:10 ~max_slm_faults:6
      (Campaign.Sec_pair (alu_pair ()))
  in
  check_bool "mutants enumerated" true (r.Campaign.r_total > 0);
  check_int "no false equivalents" 0 r.Campaign.r_false_eq;
  check_int "no crashes" 0 r.Campaign.r_crashed;
  check_int "no mislocalized counterexamples" 0 r.Campaign.r_mislocalized;
  check_int "every fault detected" r.Campaign.r_total r.Campaign.r_detected;
  let rate, false_eq, pass = Suite.gate [ r ] in
  check_bool "gate passes" true pass;
  check_bool "rate is 1.0" true (rate = 1.0);
  check_int "gate false equivalents" 0 false_eq

let test_campaign_survives_crashing_mutant () =
  (* One mutant whose run dies must degrade to a recorded verdict while
     the rest of the campaign completes normally. *)
  let boom =
    Campaign.Custom_mutant
      { cm_name = "boom"; cm_run = (fun () -> failwith "boom") }
  in
  let ok =
    Campaign.Custom_mutant { cm_name = "ok"; cm_run = (fun () -> true) }
  in
  let r =
    Campaign.run ?budget ~max_rtl_faults:4 ~max_slm_faults:2
      ~extra_mutants:[ boom; ok ]
      (Campaign.Sec_pair (alu_pair ()))
  in
  check_int "crash recorded" 1 r.Campaign.r_crashed;
  check_bool "other mutants still ran" true (r.Campaign.r_detected >= 1);
  let crashed =
    List.find
      (fun m -> m.Campaign.m_name = "boom")
      r.Campaign.r_results
  in
  (match crashed.Campaign.verdict with
  | Campaign.Crashed (Dfv_core.Dfv_error.Internal m) ->
    check_bool "cause preserved" true
      (let n = String.length "boom" and h = String.length m in
       let rec go i = i + n <= h && (String.sub m i n = "boom" || go (i + 1)) in
       go 0)
  | v -> Alcotest.failf "wrong verdict for boom: %s" (Campaign.verdict_label v));
  (* The crash counts against the detection rate: campaigns cannot pass
     by crashing instead of verifying. *)
  check_bool "rate dented" true (Campaign.detection_rate [ r ] < 1.0)

(* Acceptance: a worker killed mid-job (models a segfault or OOM kill)
   must leave the campaign alive, with that one mutant Crashed on a
   Worker_crashed — distinct from the structured Internal a raising
   mutant produces, and distinct from the Unknown a timed-out one
   produces. *)
let test_pooled_killed_worker () =
  let kill_self =
    Campaign.Custom_mutant
      {
        cm_name = "kill-self";
        cm_run =
          (fun () ->
            Unix.kill (Unix.getpid ()) Sys.sigkill;
            false);
      }
  in
  let boom =
    Campaign.Custom_mutant
      { cm_name = "boom"; cm_run = (fun () -> failwith "boom") }
  in
  let r =
    Campaign.run ?budget ~jobs:2 ~max_rtl_faults:4 ~max_slm_faults:2
      ~extra_mutants:[ kill_self; boom ]
      (Campaign.Sec_pair (alu_pair ()))
  in
  check_int "both degraded to Crashed" 2 r.Campaign.r_crashed;
  check_bool "rest of the campaign completed" true (r.Campaign.r_detected >= 1);
  let verdict_of name =
    (List.find (fun m -> m.Campaign.m_name = name) r.Campaign.r_results)
      .Campaign.verdict
  in
  (match verdict_of "kill-self" with
  | Campaign.Crashed (Dfv_core.Dfv_error.Worker_crashed _) -> ()
  | v ->
    Alcotest.failf "kill-self should be Worker_crashed, got %s"
      (Campaign.verdict_label v));
  match verdict_of "boom" with
  | Campaign.Crashed (Dfv_core.Dfv_error.Internal m) ->
    Alcotest.(check string) "raise stays structured across the pipe" "boom" m
  | v ->
    Alcotest.failf "boom should be Crashed (Internal), got %s"
      (Campaign.verdict_label v)

(* A wedged mutant under a wall-clock budget is a justified Unknown
   (budget-like), never a Crashed: the distinction feeds the gate, which
   tolerates unknowns but not silent crashes. *)
let test_pooled_timeout_is_unknown () =
  let sleeper =
    Campaign.Custom_mutant
      {
        cm_name = "sleeper";
        cm_run =
          (fun () ->
            Unix.sleep 60;
            false);
      }
  in
  let r =
    Campaign.run ?budget ~jobs:2 ~timeout:2.0 ~max_rtl_faults:4
      ~max_slm_faults:2 ~extra_mutants:[ sleeper ]
      (Campaign.Sec_pair (alu_pair ()))
  in
  check_int "no crash" 0 r.Campaign.r_crashed;
  check_bool "unknown recorded" true (r.Campaign.r_unknown >= 1);
  let sleeper_v =
    (List.find (fun m -> m.Campaign.m_name = "sleeper") r.Campaign.r_results)
      .Campaign.verdict
  in
  match sleeper_v with
  | Campaign.Unknown { seconds; _ } ->
    check_bool "budget recorded" true (seconds = 2.0)
  | v ->
    Alcotest.failf "sleeper should be Unknown, got %s"
      (Campaign.verdict_label v)

let test_json_report () =
  let r =
    Campaign.run ?budget ~max_rtl_faults:4 ~max_slm_faults:2
      (Campaign.Sec_pair (alu_pair ()))
  in
  let json = Campaign.json_of_reports ~min_rate:0.95 [ r ] in
  let contains sub =
    let n = String.length sub and h = String.length json in
    let rec go i = i + n <= h && (String.sub json i n = sub || go (i + 1)) in
    go 0
  in
  check_bool "schema field" true (contains "\"schema\":\"dfv-faultsim\"");
  check_bool "version field" true (contains "\"version\":1");
  check_bool "pass field" true (contains "\"pass\":true");
  check_bool "subject listed" true (contains "\"name\":\"alu\"");
  check_bool "verdicts serialized" true (contains "\"verdict\":\"detected\"")

(* --- durability: kill-mid-campaign resume, deadline shedding ---------- *)

module Journal = Dfv_par.Journal

(* A report with every timing zeroed: what "byte-identical (timings
   aside)" means, made executable. *)
let canon (r : Campaign.report) =
  let canon_verdict = function
    | Campaign.Detected d -> Campaign.Detected { d with seconds = 0.0 }
    | Campaign.Survived _ -> Campaign.Survived { seconds = 0.0 }
    | Campaign.False_equivalent _ -> Campaign.False_equivalent { seconds = 0.0 }
    | Campaign.Unknown u -> Campaign.Unknown { u with seconds = 0.0 }
    | Campaign.Crashed e -> Campaign.Crashed e
  in
  {
    r with
    Campaign.r_wall = 0.0;
    r_results =
      List.map
        (fun m -> { m with Campaign.verdict = canon_verdict m.Campaign.verdict })
        r.Campaign.r_results;
  }

(* Simulate a SIGKILL mid-campaign: run the campaign journaled, chop the
   journal down to a prefix of its records (a crash can stop the append
   stream anywhere — even mid-line, which the torn-tail policy covers
   in test_par), then resume.  The resumed report must equal the
   uninterrupted one exactly, timings aside, with the prefix replayed
   rather than re-run. *)
let test_campaign_resume_byte_identical () =
  let subject () = Campaign.Sec_pair (alu_pair ()) in
  let reference =
    Campaign.run ?budget ~max_rtl_faults:6 ~max_slm_faults:2 (subject ())
  in
  let path = Filename.temp_file "dfv_campaign" ".jsonl" in
  Sys.remove path;
  let j =
    match Journal.open_ ~path ~campaign:"resume-test" with
    | Ok j -> j
    | Error m -> Alcotest.failf "journal: %s" m
  in
  let full =
    Campaign.run ?budget ~max_rtl_faults:6 ~max_slm_faults:2 ~journal:j
      (subject ())
  in
  Journal.close j;
  Alcotest.check Alcotest.bool "journaled run matches reference" true
    (canon full = canon reference);
  (* keep the header plus the first 3 records: the "crash point" *)
  let ic = open_in_bin path in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let prefix =
    match String.split_on_char '\n' contents with
    | header :: records ->
      String.concat "\n" (header :: List.filteri (fun i _ -> i < 3) records)
      ^ "\n"
    | [] -> Alcotest.fail "empty journal"
  in
  let oc = open_out_bin path in
  output_string oc prefix;
  close_out oc;
  let j =
    match Journal.open_ ~path ~campaign:"resume-test" with
    | Ok j -> j
    | Error m -> Alcotest.failf "journal reopen: %s" m
  in
  check_int "prefix replayed" 3 (Journal.replayed j);
  let resumed =
    Campaign.run ?budget ~max_rtl_faults:6 ~max_slm_faults:2 ~journal:j
      (subject ())
  in
  Journal.close j;
  Sys.remove path;
  check_bool "resumed report byte-identical (timings aside)" true
    (canon resumed = canon reference);
  check_int "total preserved" reference.Campaign.r_total
    resumed.Campaign.r_total

(* A deadline already in the past sheds every mutant to Unknown —
   reported in r_shed, never silently — and the campaign still returns
   a complete report instead of dying. *)
let test_campaign_deadline_sheds () =
  let r =
    Campaign.run ?budget ~max_rtl_faults:4 ~max_slm_faults:2
      ~deadline_at:(Unix.gettimeofday () -. 1.0)
      (Campaign.Sec_pair (alu_pair ()))
  in
  check_int "everything shed" r.Campaign.r_total r.Campaign.r_shed;
  check_int "shed mutants are unknowns" r.Campaign.r_total
    r.Campaign.r_unknown;
  check_int "nothing crashed" 0 r.Campaign.r_crashed;
  (* shedding must not poison the gate denominator *)
  check_bool "rate unaffected" true
    (Campaign.detection_rate [ r ] = 1.0)

(* Journal resume on the domains executor: the same kill-mid-campaign
   scenario as test_campaign_resume_byte_identical, with the pooled legs
   running on in-process domains instead of forked workers.  Lives in a
   separate suite registered after every fork-using test: OCaml 5
   forbids Unix.fork once a process has spawned a domain, so this must
   be among the last pool work in the test binary. *)
let test_campaign_resume_on_domains () =
  let subject () = Campaign.Sec_pair (alu_pair ()) in
  let run ?journal () =
    Campaign.run ?budget ~jobs:2 ~pool:true ~exec:`Domains ~max_rtl_faults:6
      ~max_slm_faults:2 ?journal (subject ())
  in
  let reference = run () in
  let path = Filename.temp_file "dfv_campaign_dom" ".jsonl" in
  Sys.remove path;
  let j =
    match Journal.open_ ~path ~campaign:"resume-domains" with
    | Ok j -> j
    | Error m -> Alcotest.failf "journal: %s" m
  in
  let full = run ~journal:j () in
  Journal.close j;
  check_bool "journaled domains run matches reference" true
    (canon full = canon reference);
  let ic = open_in_bin path in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let prefix =
    match String.split_on_char '\n' contents with
    | header :: records ->
      String.concat "\n" (header :: List.filteri (fun i _ -> i < 3) records)
      ^ "\n"
    | [] -> Alcotest.fail "empty journal"
  in
  let oc = open_out_bin path in
  output_string oc prefix;
  close_out oc;
  let j =
    match Journal.open_ ~path ~campaign:"resume-domains" with
    | Ok j -> j
    | Error m -> Alcotest.failf "journal reopen: %s" m
  in
  check_int "prefix replayed" 3 (Journal.replayed j);
  let resumed = run ~journal:j () in
  Journal.close j;
  Sys.remove path;
  check_bool "resumed domains report byte-identical (timings aside)" true
    (canon resumed = canon reference);
  check_int "total preserved" reference.Campaign.r_total
    resumed.Campaign.r_total

let domains_suite =
  [ Alcotest.test_case "domains campaign journal resume is byte-identical"
      `Quick test_campaign_resume_on_domains ]

let suite =
  [ Alcotest.test_case "enumerate rtl faults" `Quick test_enumerate_rtl;
    Alcotest.test_case "enumerate slm faults (reachable only)" `Quick
      test_enumerate_slm_reachable_only;
    Alcotest.test_case "fan-in cone" `Quick test_cone;
    Alcotest.test_case "alu campaign gate" `Quick test_alu_campaign_gate;
    Alcotest.test_case "campaign survives crashing mutant" `Quick
      test_campaign_survives_crashing_mutant;
    Alcotest.test_case "pooled campaign: killed worker is Crashed" `Quick
      test_pooled_killed_worker;
    Alcotest.test_case "pooled campaign: timeout is Unknown" `Slow
      test_pooled_timeout_is_unknown;
    Alcotest.test_case "json report" `Quick test_json_report;
    Alcotest.test_case "kill-mid-campaign resume is byte-identical" `Quick
      test_campaign_resume_byte_identical;
    Alcotest.test_case "deadline sheds to Unknown, never silently" `Quick
      test_campaign_deadline_sheds ]
