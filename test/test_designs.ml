(* Tests for the design pairs: each SLM, RTL and golden model agree with
   one another, SEC proves the clean pairs and refutes the buggy ones. *)

open Dfv_bitvec
open Dfv_hwir
open Dfv_sec
open Dfv_cosim
open Dfv_designs

let check_int = Alcotest.check Alcotest.int
let check_bool = Alcotest.check Alcotest.bool

(* --- gcd -------------------------------------------------------------- *)

let test_gcd_models_agree () =
  let t = Gcd.make ~width:5 in
  for a = 0 to 31 do
    for b = 0 to 31 do
      let g = Gcd.golden a b in
      if Gcd.run_slm t a b <> g then Alcotest.failf "slm gcd(%d,%d)" a b;
      let r, cycles = Gcd.run_rtl t a b in
      if r <> g then Alcotest.failf "rtl gcd(%d,%d) = %d, want %d" a b r g;
      if cycles > t.Gcd.iteration_bound + 2 then
        Alcotest.failf "gcd(%d,%d) took %d cycles" a b cycles
    done
  done

let test_gcd_sec () =
  let t = Gcd.make ~width:4 in
  match Checker.check_slm_rtl ~slm:t.Gcd.slm ~rtl:t.Gcd.rtl ~spec:t.Gcd.spec () with
  | Checker.Equivalent stats ->
    check_bool "nontrivial" true (stats.Checker.aig_ands > 1000)
  | Checker.Not_equivalent (cex, _) ->
    (match (List.assoc "a" cex.Checker.params, List.assoc "b" cex.Checker.params) with
    | Interp.Vint a, Interp.Vint b ->
      Alcotest.failf "gcd SEC cex a=%s b=%s" (Bitvec.to_string a)
        (Bitvec.to_string b)
    | _ -> Alcotest.fail "gcd SEC failed")
  | Checker.Unknown _ -> Alcotest.fail "unexpected unknown"

(* --- alu -------------------------------------------------------------- *)

let test_alu_models_agree () =
  let t = Alu.make ~width:8 () in
  let st = Random.State.make [| 11 |] in
  for _ = 1 to 2000 do
    let op = Random.State.int st 8 in
    let a = Random.State.int st 256 and b = Random.State.int st 256 in
    let g = Alu.golden ~width:8 ~op a b in
    if Alu.run_slm t ~op a b <> g then
      Alcotest.failf "slm alu op=%d a=%d b=%d" op a b;
    if Alu.run_rtl t ~op a b <> g then
      Alcotest.failf "rtl alu op=%d a=%d b=%d" op a b
  done

let test_alu_bug_variants_differ () =
  List.iter
    (fun bug ->
      let t = Alu.make ~bug ~width:8 () in
      let found = ref false in
      for op = 0 to 7 do
        for a = 0 to 63 do
          for b = 0 to 63 do
            if not !found then
              if
                Alu.run_rtl t ~op (a * 4) (b * 4 + 1)
                <> Alu.golden ~width:8 ~op (a * 4) (b * 4 + 1)
              then found := true
          done
        done
      done;
      if not !found then
        Alcotest.failf "bug %s has no visible effect" (Alu.bug_name bug))
    Alu.all_bugs

let test_alu_sec_clean () =
  let t = Alu.make ~width:8 () in
  match Checker.check_slm_rtl ~slm:t.Alu.slm ~rtl:t.Alu.rtl ~spec:t.Alu.spec () with
  | Checker.Equivalent _ -> ()
  | Checker.Not_equivalent _ -> Alcotest.fail "clean ALU should be equivalent"
  | Checker.Unknown _ -> Alcotest.fail "unexpected unknown"

let test_alu_sec_finds_every_bug () =
  List.iter
    (fun bug ->
      let t = Alu.make ~bug ~width:8 () in
      match
        Checker.check_slm_rtl ~slm:t.Alu.slm ~rtl:t.Alu.rtl ~spec:t.Alu.spec ()
      with
      | Checker.Not_equivalent (cex, _) -> (
        (* Validate the counterexample concretely. *)
        match
          ( List.assoc "op" cex.Checker.params,
            List.assoc "a" cex.Checker.params,
            List.assoc "b" cex.Checker.params )
        with
        | Interp.Vint op, Interp.Vint a, Interp.Vint b ->
          let op = Bitvec.to_int op
          and a = Bitvec.to_int a
          and b = Bitvec.to_int b in
          if Alu.run_rtl t ~op a b = Alu.run_slm t ~op a b then
            Alcotest.failf "bug %s: cex does not reproduce" (Alu.bug_name bug)
        | _ -> Alcotest.fail "bad cex shape")
      | Checker.Equivalent _ ->
        Alcotest.failf "bug %s not found by SEC" (Alu.bug_name bug)
      | Checker.Unknown _ -> Alcotest.fail "unexpected unknown")
    Alu.all_bugs

(* --- fir -------------------------------------------------------------- *)

let fir_taps = [ 3; -5; 7; 2 ]

let random_window st t =
  Array.init (List.length t.Fir.taps) (fun _ ->
      Random.State.int st (1 lsl t.Fir.width))

let test_fir_slm_matches_golden () =
  let t = Fir.make ~taps:fir_taps () in
  let st = Random.State.make [| 23 |] in
  for _ = 1 to 300 do
    let w = random_window st t in
    check_int "exact" (Fir.golden_exact t w)
      (Fir.run_slm_window t.Fir.slm_exact ~width:t.Fir.width w);
    check_int "cstyle" (Fir.golden_cstyle t w)
      (Fir.run_slm_window t.Fir.slm_cstyle ~width:t.Fir.width w)
  done

let big_taps = [ 127; 127; 127; -128 ]

let test_fir_models_diverge_on_saturation () =
  (* Intermediate sums overflow and saturate, then the negative tap pulls
     the exact accumulator back down — the wide C accumulator never
     saturated, so the final values differ. *)
  let t = Fir.make ~taps:big_taps () in
  let w = [| 127; 127; 127; 127 |] in
  let exact = Fir.golden_exact t w and cstyle = Fir.golden_cstyle t w in
  check_bool "diverge" true (exact <> cstyle)

let test_fir_rtl_stream_matches_golden () =
  let t = Fir.make ~taps:fir_taps () in
  let st = Random.State.make [| 37 |] in
  let signal = Array.init 100 (fun _ -> Random.State.int st 256) in
  let expected = Fir.filter_signal t signal in
  let got, cycles = Fir.run_rtl_stream t signal in
  check_int "same length" (Array.length expected) (Array.length got);
  Array.iteri
    (fun i e -> if got.(i) <> e then Alcotest.failf "sample %d: %d <> %d" i got.(i) e)
    expected;
  check_bool "cycle count sane" true (cycles >= 100)

let test_fir_sec_exact_equivalent () =
  let t = Fir.make ~taps:fir_taps () in
  match
    Checker.check_slm_rtl ~slm:t.Fir.slm_exact ~rtl:t.Fir.rtl ~spec:t.Fir.spec ()
  with
  | Checker.Equivalent _ -> ()
  | Checker.Not_equivalent (cex, _) -> (
    match List.assoc "x" cex.Checker.params with
    | Interp.Varr a ->
      Alcotest.failf "unexpected fir cex [%s]"
        (String.concat ";" (Array.to_list (Array.map Bitvec.to_string a)))
    | _ -> Alcotest.fail "fir SEC failed")
  | Checker.Unknown _ -> Alcotest.fail "unexpected unknown"

let test_fir_sec_catches_cstyle () =
  let t = Fir.make ~taps:big_taps () in
  match
    Checker.check_slm_rtl ~slm:t.Fir.slm_cstyle ~rtl:t.Fir.rtl ~spec:t.Fir.spec ()
  with
  | Checker.Not_equivalent (cex, _) -> (
    (* The cex must be an actual divergence of the two golden models. *)
    match List.assoc "x" cex.Checker.params with
    | Interp.Varr a ->
      let w = Array.map Bitvec.to_int a in
      check_bool "genuine divergence" true
        (Fir.golden_exact t w <> Fir.golden_cstyle t w)
    | _ -> Alcotest.fail "bad cex shape")
  | Checker.Equivalent _ -> Alcotest.fail "c-style model wrongly equivalent"
  | Checker.Unknown _ -> Alcotest.fail "unexpected unknown"

let test_fir_sec_cstyle_equivalent_when_unsaturable () =
  (* With small taps the intermediate sums cannot overflow, so per-step
     and final saturation coincide — SEC proves the c-style model
     equivalent too.  (The paper: divergence is conditional, and SEC
     tells you precisely when.) *)
  let t = Fir.make ~taps:fir_taps () in
  match
    Checker.check_slm_rtl ~slm:t.Fir.slm_cstyle ~rtl:t.Fir.rtl ~spec:t.Fir.spec ()
  with
  | Checker.Equivalent _ -> ()
  | Checker.Not_equivalent _ -> Alcotest.fail "small-tap c-style should match"
  | Checker.Unknown _ -> Alcotest.fail "unexpected unknown"

(* --- memsys ------------------------------------------------------------ *)

let mixed_requests =
  (* Writes then a mix of hits (repeated addresses) and misses (fresh
     addresses mapping to different lines). *)
  [ { Memsys.req_tag = 0; op = Memsys.Write (0x11, 0xAA) };
    { Memsys.req_tag = 1; op = Memsys.Write (0x22, 0xBB) };
    { Memsys.req_tag = 2; op = Memsys.Read 0x11 };
    { Memsys.req_tag = 3; op = Memsys.Read 0x11 };
    { Memsys.req_tag = 4; op = Memsys.Read 0x33 };
    { Memsys.req_tag = 5; op = Memsys.Read 0x11 };
    { Memsys.req_tag = 6; op = Memsys.Read 0x22 };
    { Memsys.req_tag = 7; op = Memsys.Write (0x44, 0xCC) };
    { Memsys.req_tag = 8; op = Memsys.Read 0x44 };
    { Memsys.req_tag = 9; op = Memsys.Read 0x22 } ]

let run_memsys rtl ~ready requests =
  let c = Memsys.default_config in
  Txn_engine.run ~rtl ~iface:(Memsys.iface c ~ready)
    ~requests:(Memsys.to_engine_requests c requests)
    ()

let check_against_golden requests completions =
  let c = Memsys.default_config in
  let slm = Memsys.Slm.create c in
  let expected = Memsys.Slm.execute_all slm requests in
  let sb = Scoreboard.create Scoreboard.Out_of_order in
  List.iter
    (fun (tag, data) ->
      Scoreboard.expect sb
        ~tag:(Bitvec.create ~width:c.Memsys.tag_width tag)
        ~cycle:0
        (Bitvec.create ~width:c.Memsys.data_width data))
    expected;
  List.iter
    (fun (cp : Txn_engine.completion) ->
      Scoreboard.observe sb ~tag:cp.Txn_engine.c_tag ~cycle:cp.Txn_engine.c_cycle
        cp.Txn_engine.c_data)
    completions;
  Scoreboard.report sb

let test_memsys_simple_matches_golden () =
  let c = Memsys.default_config in
  let completions, _ = run_memsys (Memsys.rtl_simple c) ~ready:false mixed_requests in
  let r = check_against_golden mixed_requests completions in
  check_bool "scoreboard clean" true (Scoreboard.ok r);
  check_int "all matched" (List.length mixed_requests) r.Scoreboard.matched

let test_memsys_cached_matches_golden () =
  let c = Memsys.default_config in
  let completions, _ = run_memsys (Memsys.rtl_cached c) ~ready:true mixed_requests in
  let r = check_against_golden mixed_requests completions in
  check_bool "scoreboard clean" true (Scoreboard.ok r);
  check_int "all matched" (List.length mixed_requests) r.Scoreboard.matched

let test_memsys_cached_reorders () =
  (* A miss followed by hits: the hits complete first. *)
  let c = Memsys.default_config in
  let warmup =
    [ { Memsys.req_tag = 0; op = Memsys.Write (0x05, 0x55) };
      { Memsys.req_tag = 1; op = Memsys.Read 0x05 } (* fill line 5 *) ]
  in
  let probe =
    [ { Memsys.req_tag = 2; op = Memsys.Read 0x77 } (* miss *);
      { Memsys.req_tag = 3; op = Memsys.Read 0x05 } (* hit under miss *);
      { Memsys.req_tag = 4; op = Memsys.Read 0x05 } (* hit under miss *) ]
  in
  let completions, _ =
    run_memsys (Memsys.rtl_cached c) ~ready:true (warmup @ probe)
  in
  let order = List.map (fun cp -> Bitvec.to_int cp.Txn_engine.c_tag) completions in
  (* Tag 3 (a hit) must complete before tag 2 (the miss). *)
  let pos t =
    let rec go i = function
      | [] -> Alcotest.failf "tag %d missing" t
      | x :: rest -> if x = t then i else go (i + 1) rest
    in
    go 0 order
  in
  check_bool "hit overtakes miss" true (pos 3 < pos 2);
  (* Data is still correct under the tagged scoreboard. *)
  let r = check_against_golden (warmup @ probe) completions in
  check_bool "clean" true (Scoreboard.ok r)

let test_memsys_inorder_scoreboard_fails_on_cache () =
  (* The C7 claim: an in-order comparison discipline breaks on the
     reordering cache even though the data is correct. *)
  let c = Memsys.default_config in
  let requests =
    [ { Memsys.req_tag = 0; op = Memsys.Write (0x09, 0x99) };
      { Memsys.req_tag = 1; op = Memsys.Read 0x09 };
      { Memsys.req_tag = 2; op = Memsys.Read 0x60 } (* miss *);
      { Memsys.req_tag = 3; op = Memsys.Read 0x09 } (* overtaking hit *) ]
  in
  let completions, _ = run_memsys (Memsys.rtl_cached c) ~ready:true requests in
  let slm = Memsys.Slm.create c in
  let expected = Memsys.Slm.execute_all slm requests in
  let sb = Scoreboard.create Scoreboard.In_order in
  List.iteri
    (fun i (_, data) ->
      Scoreboard.expect sb ~cycle:i
        (Bitvec.create ~width:c.Memsys.data_width data))
    expected;
  List.iter
    (fun (cp : Txn_engine.completion) ->
      Scoreboard.observe sb ~cycle:cp.Txn_engine.c_cycle cp.Txn_engine.c_data)
    completions;
  check_bool "in-order policy rejects reordered trace" false
    (Scoreboard.ok (Scoreboard.report sb))

let test_memsys_latency_profile () =
  (* Hits are fast, misses slow — the latency variability of Fig. 2. *)
  let c = Memsys.default_config in
  let requests =
    { Memsys.req_tag = 0; op = Memsys.Read 0x10 } (* miss *)
    :: List.init 5 (fun i -> { Memsys.req_tag = i + 1; op = Memsys.Read 0x10 })
  in
  let completions, _ = run_memsys (Memsys.rtl_cached c) ~ready:true requests in
  let cycle_of t =
    let cp =
      List.find (fun cp -> Bitvec.to_int cp.Txn_engine.c_tag = t) completions
    in
    cp.Txn_engine.c_cycle
  in
  (* The miss takes miss_penalty + 2 cycles; subsequent hits ~2. *)
  check_bool "miss is slow" true (cycle_of 0 >= c.Memsys.miss_penalty);
  check_bool "later hits are fast" true (cycle_of 5 - cycle_of 4 <= 2)

(* --- conv image ---------------------------------------------------------- *)

let random_image st h w = Array.init h (fun _ -> Array.init w (fun _ -> Random.State.int st 256))

let test_conv_stream_matches_golden () =
  List.iter
    (fun (kernel, shift) ->
      let t = Conv_image.make ~kernel ~shift () in
      let st = Random.State.make [| 71 |] in
      let img = random_image st 12 17 in
      let expected = Conv_image.golden t img in
      let got, cycles = Conv_image.run_stream t img in
      Array.iteri
        (fun r row ->
          Array.iteri
            (fun cidx e ->
              if got.(r).(cidx) <> e then
                Alcotest.failf "pixel (%d,%d): %d <> %d" r cidx got.(r).(cidx) e)
            row)
        expected;
      check_bool "cycles = pixels + drain" true (cycles = (12 * 17) + 1))
    [ (Conv_image.sharpen, 2); (Conv_image.box_blur, 3) ]

let test_conv_window_sec () =
  let t = Conv_image.make ~kernel:Conv_image.sharpen ~shift:2 () in
  match
    Checker.check_slm_rtl ~slm:t.Conv_image.slm_window ~rtl:t.Conv_image.rtl_window
      ~spec:t.Conv_image.window_spec ()
  with
  | Checker.Equivalent _ -> ()
  | Checker.Not_equivalent _ -> Alcotest.fail "window datapath should match"
  | Checker.Unknown _ -> Alcotest.fail "unexpected unknown"

let test_conv_wrap_bug_found () =
  (* Clamped SLM vs wrap RTL: SEC finds a saturating window. *)
  let good = Conv_image.make ~kernel:Conv_image.sharpen ~shift:2 () in
  let bad = Conv_image.make ~clamped:false ~kernel:Conv_image.sharpen ~shift:2 () in
  match
    Checker.check_slm_rtl ~slm:good.Conv_image.slm_window
      ~rtl:bad.Conv_image.rtl_window ~spec:good.Conv_image.window_spec ()
  with
  | Checker.Not_equivalent (cex, _) -> (
    match List.assoc "x" cex.Checker.params with
    | Interp.Varr a ->
      let w = Array.map Bitvec.to_int a in
      let clamped = Conv_image.golden_pixel good w in
      let wrapped = Conv_image.golden_pixel bad w in
      check_bool "cex is a real saturation case" true (clamped <> wrapped)
    | _ -> Alcotest.fail "bad cex")
  | Checker.Equivalent _ -> Alcotest.fail "wrap bug not found"
  | Checker.Unknown _ -> Alcotest.fail "unexpected unknown"

let test_conv_golden_pixel_vs_slm () =
  let t = Conv_image.make ~kernel:Conv_image.sharpen ~shift:2 () in
  let st = Random.State.make [| 5 |] in
  for _ = 1 to 200 do
    let w = Array.init 9 (fun _ -> Random.State.int st 256) in
    let expect = Conv_image.golden_pixel t w in
    let got =
      Bitvec.to_int
        (Interp.as_int
           (Interp.run t.Conv_image.slm_window
              [ Interp.Varr (Array.map (fun v -> Bitvec.create ~width:8 v) w) ]))
    in
    check_int "window" expect got
  done

(* --- minifloat ------------------------------------------------------------- *)

let test_minifloat_interp_matches_golden () =
  let t = Minifloat.make () in
  let st = Random.State.make [| 13 |] in
  (* Random sample plus a denormal-heavy corner set. *)
  let corners = [ 0x00; 0x80; 0x01; 0x81; 0x07; 0x87; 0x08; 0x88; 0x78; 0xF8; 0x7F; 0xFF ] in
  let pairs =
    List.concat_map (fun a -> List.map (fun b -> (a, b)) corners) corners
    @ List.init 1500 (fun _ -> (Random.State.int st 256, Random.State.int st 256))
  in
  List.iter
    (fun (a, b) ->
      let gf = Minifloat.golden_add ~flush:false a b in
      let gl = Minifloat.golden_add ~flush:true a b in
      let rf = Minifloat.run t.Minifloat.full a b in
      let rl = Minifloat.run t.Minifloat.lite a b in
      if rf <> gf then
        Alcotest.failf "full fadd(%02x, %02x) = %02x, want %02x" a b rf gf;
      if rl <> gl then
        Alcotest.failf "lite fadd(%02x, %02x) = %02x, want %02x" a b rl gl)
    pairs

let test_minifloat_decode_sane () =
  check_bool "1.0" true (Minifloat.decode 0x38 = 1.0);
  check_bool "-1.0" true (Minifloat.decode 0xB8 = -1.0);
  check_bool "+0" true (Minifloat.decode 0x00 = 0.0);
  check_bool "denormal positive" true (Minifloat.decode 0x01 > 0.0);
  (* Addition is faithful to real arithmetic when exact: 1.0 + 1.0. *)
  check_bool "1+1=2" true
    (Minifloat.decode (Minifloat.golden_add ~flush:false 0x38 0x38) = 2.0)

let test_minifloat_divergence_is_denormal_only () =
  (* Exhaustive: the two profiles differ somewhere, and never when the
     safe-constraint region applies (both exponents >= 5). *)
  let diverged = ref 0 and diverged_safe = ref 0 in
  for a = 0 to 255 do
    for b = 0 to 255 do
      let f = Minifloat.golden_add ~flush:false a b in
      let l = Minifloat.golden_add ~flush:true a b in
      if f <> l then begin
        incr diverged;
        if (a lsr 3) land 0xf >= 5 && (b lsr 3) land 0xf >= 5 then
          incr diverged_safe
      end
    done
  done;
  check_bool "profiles do diverge" true (!diverged > 0);
  check_int "never inside the safe region" 0 !diverged_safe

let test_minifloat_sec () =
  let t = Minifloat.make () in
  (* Unconstrained: counterexample exists (denormal corner). *)
  (match Checker.check_slm_slm ~a:t.Minifloat.full ~b:t.Minifloat.lite () with
  | Checker.Not_equivalent (cex, _) -> (
    match (List.assoc "a" cex.Checker.params, List.assoc "b" cex.Checker.params) with
    | Interp.Vint a, Interp.Vint b ->
      let a = Bitvec.to_int a and b = Bitvec.to_int b in
      check_bool "cex reproduces" true
        (Minifloat.golden_add ~flush:false a b
        <> Minifloat.golden_add ~flush:true a b)
    | _ -> Alcotest.fail "bad cex")
  | Checker.Equivalent _ -> Alcotest.fail "profiles should diverge"
  | Checker.Unknown _ -> Alcotest.fail "unexpected unknown");
  (* Constrained to the safe region: equivalent — the paper's remedy. *)
  match
    Checker.check_slm_slm ~a:t.Minifloat.full ~b:t.Minifloat.lite
      ~constraints:t.Minifloat.safe_constraints ()
  with
  | Checker.Equivalent _ -> ()
  | Checker.Not_equivalent (cex, _) -> (
    match (List.assoc "a" cex.Checker.params, List.assoc "b" cex.Checker.params) with
    | Interp.Vint a, Interp.Vint b ->
      Alcotest.failf "diverges under constraints: a=%s b=%s"
        (Bitvec.to_string a) (Bitvec.to_string b)
    | _ -> Alcotest.fail "bad cex")
  | Checker.Unknown _ -> Alcotest.fail "unexpected unknown"

let suite =
  [ Alcotest.test_case "gcd models agree (exhaustive)" `Quick
      test_gcd_models_agree;
    Alcotest.test_case "gcd SEC" `Quick test_gcd_sec;
    Alcotest.test_case "alu models agree" `Quick test_alu_models_agree;
    Alcotest.test_case "alu bugs have effects" `Quick
      test_alu_bug_variants_differ;
    Alcotest.test_case "alu SEC clean" `Quick test_alu_sec_clean;
    Alcotest.test_case "alu SEC finds every bug" `Quick
      test_alu_sec_finds_every_bug;
    Alcotest.test_case "fir slm = golden" `Quick test_fir_slm_matches_golden;
    Alcotest.test_case "fir exact vs c-style diverge" `Quick
      test_fir_models_diverge_on_saturation;
    Alcotest.test_case "fir rtl stream = golden" `Quick
      test_fir_rtl_stream_matches_golden;
    Alcotest.test_case "fir SEC exact equivalent" `Quick
      test_fir_sec_exact_equivalent;
    Alcotest.test_case "fir SEC catches c-style" `Quick
      test_fir_sec_catches_cstyle;
    Alcotest.test_case "fir SEC c-style ok with small taps" `Quick
      test_fir_sec_cstyle_equivalent_when_unsaturable;
    Alcotest.test_case "memsys simple = golden" `Quick
      test_memsys_simple_matches_golden;
    Alcotest.test_case "memsys cached = golden" `Quick
      test_memsys_cached_matches_golden;
    Alcotest.test_case "memsys cache reorders" `Quick test_memsys_cached_reorders;
    Alcotest.test_case "memsys in-order scoreboard fails" `Quick
      test_memsys_inorder_scoreboard_fails_on_cache;
    Alcotest.test_case "memsys latency profile" `Quick
      test_memsys_latency_profile;
    Alcotest.test_case "conv stream = golden" `Quick
      test_conv_stream_matches_golden;
    Alcotest.test_case "conv window SEC" `Quick test_conv_window_sec;
    Alcotest.test_case "conv wrap bug found" `Quick test_conv_wrap_bug_found;
    Alcotest.test_case "conv golden pixel = slm" `Quick
      test_conv_golden_pixel_vs_slm;
    Alcotest.test_case "minifloat interp = golden" `Quick
      test_minifloat_interp_matches_golden;
    Alcotest.test_case "minifloat decode" `Quick test_minifloat_decode_sane;
    Alcotest.test_case "minifloat divergence only denormal" `Quick
      test_minifloat_divergence_is_denormal_only;
    Alcotest.test_case "minifloat SEC with constraints" `Quick
      test_minifloat_sec ]

(* --- uart -------------------------------------------------------------- *)

let test_uart_slm_matches_golden () =
  let t = Uart.make () in
  for byte = 0 to 255 do
    let expect = Uart.golden_frame byte in
    let got =
      Interp.as_arr
        (Interp.run t.Uart.slm [ Interp.vint ~width:8 byte ])
    in
    Array.iteri
      (fun i e ->
        if Bitvec.to_int got.(i) <> e then
          Alcotest.failf "frame(%02x) bit %d: %d <> %d" byte i
            (Bitvec.to_int got.(i)) e)
      expect
  done

let test_uart_transmit_trace () =
  let t = Uart.make ~baud_div:3 () in
  let byte = 0xA5 in
  let trace, _ = Uart.transmit t byte in
  let frame = Uart.golden_frame byte in
  (* Cycle 0 is the request cycle (line idle); bit k occupies cycles
     1 + 3k .. 3(k+1). *)
  check_int "idle before" 1 trace.(0);
  Array.iteri
    (fun k b ->
      for j = 0 to 2 do
        let c = 1 + (3 * k) + j in
        if trace.(c) <> b then
          Alcotest.failf "cycle %d (bit %d): %d <> %d" c k trace.(c) b
      done)
    frame;
  check_int "idle after" 1 trace.(31)

let test_uart_sec () =
  let t = Uart.make () in
  match Checker.check_slm_rtl ~slm:t.Uart.slm ~rtl:t.Uart.rtl ~spec:t.Uart.spec () with
  | Checker.Equivalent _ -> ()
  | Checker.Not_equivalent (cex, _) -> (
    match List.assoc "data" cex.Checker.params with
    | Interp.Vint b ->
      Alcotest.failf "uart SEC cex data=%s" (Bitvec.to_string b)
    | _ -> Alcotest.fail "uart SEC failed")
  | Checker.Unknown _ -> Alcotest.fail "unexpected unknown"

let test_uart_sec_catches_baud_mismatch () =
  (* A transactor calibrated for divisor 4 against a divisor-5 RTL: the
     interface-timing inconsistency of Section 3.2, caught formally. *)
  let t4 = Uart.make ~baud_div:4 () in
  let t5 = Uart.make ~baud_div:5 () in
  match
    Checker.check_slm_rtl ~slm:t4.Uart.slm ~rtl:t5.Uart.rtl ~spec:t4.Uart.spec ()
  with
  | Checker.Not_equivalent _ -> ()
  | Checker.Equivalent _ -> Alcotest.fail "baud mismatch not caught"
  | Checker.Unknown _ -> Alcotest.fail "unexpected unknown"

let suite =
  suite
  @ [ Alcotest.test_case "uart slm = golden (exhaustive)" `Quick
        test_uart_slm_matches_golden;
      Alcotest.test_case "uart transmit trace" `Quick test_uart_transmit_trace;
      Alcotest.test_case "uart SEC" `Quick test_uart_sec;
      Alcotest.test_case "uart SEC catches baud mismatch" `Quick
        test_uart_sec_catches_baud_mismatch ]
