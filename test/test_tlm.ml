(* Tests for the TLM sockets: the same computation behind three
   communication abstractions (paper Section 4.4). *)

open Dfv_slm

let check_int = Alcotest.check Alcotest.int
let check_bool = Alcotest.check Alcotest.bool

let square x = x * x

let test_untimed () =
  let t = Tlm.untimed square in
  check_int "value" 49 (Tlm.transport t 7);
  check_int "count" 1 (Tlm.transactions t)

let test_loosely_timed () =
  let k = Kernel.create () in
  let t = Tlm.loosely_timed k ~latency:25 square in
  let results = ref [] in
  Kernel.thread k ~name:"initiator" (fun () ->
      for i = 1 to 4 do
        results := Tlm.transport t i :: !results
      done);
  Kernel.run k;
  check_bool "values" true (List.rev !results = [ 1; 4; 9; 16 ]);
  (* Four transactions, 25 units each: functional result identical to the
     untimed model, but time has passed. *)
  check_int "time" 100 (Kernel.now k);
  check_int "count" 4 (Tlm.transactions t)

let test_queued_serializes () =
  let k = Kernel.create () in
  let t = Tlm.queued k ~name:"srv" ~depth:2 ~service_time:10 square in
  let done_at = Array.make 3 0 in
  for i = 0 to 2 do
    Kernel.thread k ~name:(Printf.sprintf "init%d" i) (fun () ->
        let r = Tlm.transport t (i + 1) in
        check_int "value" ((i + 1) * (i + 1)) r;
        done_at.(i) <- Kernel.now k)
  done;
  Kernel.run k;
  (* The server serializes: completions at 10, 20, 30 in some order. *)
  let sorted = Array.copy done_at in
  Array.sort compare sorted;
  check_bool "serialized completions" true (sorted = [| 10; 20; 30 |]);
  check_int "count" 3 (Tlm.transactions t)

let test_queued_backpressure () =
  let k = Kernel.create () in
  let t = Tlm.queued k ~name:"srv" ~depth:1 ~service_time:5 square in
  let issue_times = ref [] in
  Kernel.thread k ~name:"producer" (fun () ->
      for i = 1 to 4 do
        ignore (Tlm.transport t i);
        issue_times := Kernel.now k :: !issue_times
      done);
  Kernel.run k;
  (* Each transport blocks until served: completion times 5,10,15,20. *)
  check_bool "blocking transports" true
    (List.rev !issue_times = [ 5; 10; 15; 20 ])

let test_same_kernel_reuse () =
  (* The paper's reuse claim in miniature: one computation function, three
     targets, identical functional results. *)
  let k = Kernel.create () in
  let u = Tlm.untimed square in
  let lt = Tlm.loosely_timed k ~latency:3 square in
  let q = Tlm.queued k ~name:"s" ~depth:4 ~service_time:2 square in
  let out_u = ref [] and out_lt = ref [] and out_q = ref [] in
  Kernel.thread k ~name:"driver" (fun () ->
      for i = 1 to 8 do
        out_u := Tlm.transport u i :: !out_u;
        out_lt := Tlm.transport lt i :: !out_lt;
        out_q := Tlm.transport q i :: !out_q
      done);
  Kernel.run k;
  check_bool "all three agree" true (!out_u = !out_lt && !out_lt = !out_q)

let test_queued_server_fault () =
  (* A queued server whose computation raises on one input: the
     initiator gets a typed Protocol_violation naming the channel, and
     the channel keeps serving afterwards. *)
  let k = Kernel.create () in
  let f x = if x = 13 then failwith "server crash" else x * x in
  let t = Tlm.queued k ~name:"srv" ~depth:2 ~service_time:5 f in
  let values = ref [] in
  let violation = ref None in
  Kernel.thread k ~name:"initiator" (fun () ->
      values := Tlm.transport t 4 :: !values;
      (match Tlm.transport_result t 13 with
      | Error e -> violation := Some e
      | Ok _ -> Alcotest.fail "faulting request produced a response");
      values := Tlm.transport t 3 :: !values);
  Kernel.run k;
  check_bool "good requests served" true (List.rev !values = [ 16; 9 ]);
  match !violation with
  | None -> Alcotest.fail "expected a protocol violation"
  | Some e ->
    Alcotest.check Alcotest.string "channel named" "srv" e.Tlm.channel;
    let contains s sub =
      let n = String.length sub and h = String.length s in
      let rec go i = i + n <= h && (String.sub s i n = sub || go (i + 1)) in
      go 0
    in
    check_bool "detail carries the cause" true (contains e.Tlm.detail "crash")

let test_transport_raises_typed () =
  (* The exception-raising variant of the same contract. *)
  let k = Kernel.create () in
  let t =
    Tlm.queued k ~name:"bad" ~depth:1 ~service_time:1 (fun _ ->
        raise Exit)
  in
  let raised = ref false in
  Kernel.thread k ~name:"initiator" (fun () ->
      match Tlm.transport t 0 with
      | _ -> ()
      | exception Tlm.Protocol_violation e ->
        raised := e.Tlm.channel = "bad");
  Kernel.run k;
  check_bool "typed exception raised" true !raised

let suite =
  [ Alcotest.test_case "untimed" `Quick test_untimed;
    Alcotest.test_case "loosely timed" `Quick test_loosely_timed;
    Alcotest.test_case "queued serializes" `Quick test_queued_serializes;
    Alcotest.test_case "queued backpressure" `Quick test_queued_backpressure;
    Alcotest.test_case "three abstractions, one function" `Quick
      test_same_kernel_reuse;
    Alcotest.test_case "queued server fault is typed" `Quick
      test_queued_server_fault;
    Alcotest.test_case "transport raises protocol violation" `Quick
      test_transport_raises_typed ]
