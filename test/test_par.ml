(* The fork-based worker pool: ordering, determinism across job counts,
   crash isolation (a killed worker is a recorded error, not a dead
   run), per-job timeouts, and portfolio cancellation. *)

module Pool = Dfv_par.Pool
module Portfolio = Dfv_par.Portfolio
module Dfv_error = Dfv_core.Dfv_error
module Json = Dfv_obs.Json
module Checker = Dfv_sec.Checker

let encode_int i = Json.Int i

let decode_int = function
  | Json.Int i -> Ok i
  | _ -> Error "expected int"

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected pool error: %s" (Dfv_error.to_string e)

let test_map_order () =
  let inputs = [ 5; 3; 9; 1; 7; 2 ] in
  let out =
    Pool.map ~jobs:3 ~encode:encode_int ~decode:decode_int
      (fun x -> x * x)
      inputs
  in
  Alcotest.(check (list int))
    "squares in input order"
    (List.map (fun x -> x * x) inputs)
    (List.map ok out)

let test_map_jobs_invariant () =
  let inputs = List.init 9 (fun i -> i) in
  let run jobs =
    Pool.map ~jobs ~encode:encode_int ~decode:decode_int
      (fun x -> (x * 31) + 7)
      inputs
    |> List.map ok
  in
  Alcotest.(check (list int)) "jobs=1 equals jobs=4" (run 1) (run 4)

let test_map_empty () =
  let out = Pool.map ~jobs:2 ~encode:encode_int ~decode:decode_int (fun x -> x) [] in
  Alcotest.(check int) "no outcomes" 0 (List.length out)

let test_job_seed_deterministic () =
  let a = Pool.job_seed ~seed:42 3 in
  let b = Pool.job_seed ~seed:42 3 in
  Alcotest.(check int) "pure function" a b;
  Alcotest.(check bool)
    "neighbouring indices differ" true
    (Pool.job_seed ~seed:42 3 <> Pool.job_seed ~seed:42 4);
  Alcotest.(check bool)
    "seeds differ" true
    (Pool.job_seed ~seed:1 3 <> Pool.job_seed ~seed:2 3);
  Alcotest.(check bool) "non-negative" true (Pool.job_seed ~seed:0 0 >= 0)

(* A worker that SIGKILLs itself mid-job models a segfault / OOM kill:
   the pool must record Worker_crashed for that job and still deliver
   every other result. *)
let test_worker_killed () =
  let out =
    Pool.map ~jobs:2 ~encode:encode_int ~decode:decode_int
      (fun x ->
        if x = 1 then Unix.kill (Unix.getpid ()) Sys.sigkill;
        x * 10)
      [ 0; 1; 2 ]
  in
  let contains hay needle =
    let h = String.length hay and n = String.length needle in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    n = 0 || go 0
  in
  (match out with
  | [ Ok 0; Error (Dfv_error.Worker_crashed { detail; _ }); Ok 20 ] ->
    Alcotest.(check bool)
      "detail names the signal" true
      (contains detail "SIGKILL" || contains detail "signal")
  | _ -> Alcotest.fail "expected [Ok 0; Error Worker_crashed; Ok 20]")

(* A worker raising stays an in-taxonomy error (carried across the pipe
   as structured JSON), distinct from a crash. *)
let test_worker_raises () =
  let out =
    Pool.map ~jobs:2 ~encode:encode_int ~decode:decode_int
      (fun x -> if x = 1 then failwith "boom" else x)
      [ 0; 1 ]
  in
  match out with
  | [ Ok 0; Error (Dfv_error.Internal m) ] ->
    Alcotest.(check string) "message survives the pipe" "boom" m
  | _ -> Alcotest.fail "expected [Ok 0; Error Internal]"

(* A worker exceeding the wall-clock budget is killed and reported as
   Worker_timeout — never blocks the campaign. *)
let test_worker_timeout () =
  let t0 = Unix.gettimeofday () in
  let out =
    Pool.map ~jobs:2 ~timeout:0.5 ~heartbeat:0.1
      ~label:(Printf.sprintf "job%d")
      ~encode:encode_int ~decode:decode_int
      (fun x ->
        if x = 1 then Unix.sleep 60;
        x)
      [ 0; 1 ]
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool) "killed promptly, not after 60s" true (elapsed < 30.0);
  match out with
  | [ Ok 0; Error (Dfv_error.Worker_timeout { job; seconds }) ] ->
    Alcotest.(check string) "labelled" "job1" job;
    Alcotest.(check bool) "budget recorded" true (seconds = 0.5)
  | _ -> Alcotest.fail "expected [Ok 0; Error Worker_timeout]"

(* Race: the first conclusive result wins and the stragglers are
   cancelled (their outcomes stay None). *)
let test_race_cancels () =
  let t0 = Unix.gettimeofday () in
  let r =
    Pool.race ~jobs:3 ~heartbeat:0.1 ~encode:encode_int ~decode:decode_int
      ~conclusive:(fun v -> v >= 0)
      (fun x ->
        if x = 0 then 100 else (Unix.sleep 60; -1))
      [ 0; 1; 2 ]
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool) "returned promptly" true (elapsed < 30.0);
  (match r.Pool.winner with
  | Some (0, 100) -> ()
  | _ -> Alcotest.fail "expected job 0 to win with 100");
  Alcotest.(check bool)
    "losers cancelled" true
    (r.Pool.outcomes.(1) = None && r.Pool.outcomes.(2) = None)

let test_race_no_conclusive () =
  let r =
    Pool.race ~jobs:2 ~encode:encode_int ~decode:decode_int
      ~conclusive:(fun _ -> false)
      (fun x -> x + 1)
      [ 0; 1 ]
  in
  Alcotest.(check bool) "no winner" true (r.Pool.winner = None);
  Alcotest.(check bool)
    "all outcomes filled" true
    (r.Pool.outcomes.(0) = Some (Ok 1) && r.Pool.outcomes.(1) = Some (Ok 2))

(* --- portfolio SEC ----------------------------------------------------- *)

let alu_pair () =
  let t = Dfv_designs.Alu.make ~width:8 () in
  (t.Dfv_designs.Alu.slm, t.Dfv_designs.Alu.rtl, t.Dfv_designs.Alu.spec)

let test_portfolio_slm_rtl_equivalent () =
  let slm, rtl, spec = alu_pair () in
  match Portfolio.check_slm_rtl ~jobs:2 ~slm ~rtl ~spec () with
  | Ok (Checker.Equivalent _) -> ()
  | Ok (Checker.Not_equivalent _) -> Alcotest.fail "alu should be equivalent"
  | Ok (Checker.Unknown _) -> Alcotest.fail "alu should be decided"
  | Error e -> Alcotest.failf "portfolio error: %s" (Dfv_error.to_string e)

let test_portfolio_slm_rtl_cex () =
  let slm, rtl, spec = alu_pair () in
  (* Break the RTL with the first enumerated mutation so the race must
     produce (and the parent must reconstruct) a counterexample. *)
  let fault = List.hd (Dfv_fault.Fault.enumerate_rtl ~seed:0 ~max_faults:1 rtl) in
  let rtl' = fault.Dfv_fault.Fault.rf_apply rtl in
  match Portfolio.check_slm_rtl ~jobs:2 ~slm ~rtl:rtl' ~spec () with
  | Ok (Checker.Not_equivalent (cex, _)) ->
    Alcotest.(check bool)
      "cex carries parameters" true
      (cex.Checker.params <> []);
    Alcotest.(check bool)
      "cex re-simulated to failing checks" true
      (cex.Checker.failed_checks <> [])
  | Ok (Checker.Equivalent _) -> Alcotest.fail "mutant not detected"
  | Ok (Checker.Unknown _) -> Alcotest.fail "mutant should be decided"
  | Error e -> Alcotest.failf "portfolio error: %s" (Dfv_error.to_string e)

let counter_rtl ~start =
  (* A 4-bit counter from [start]; two instances with different reset
     values diverge at frame 0 on the output. *)
  let module Netlist = Dfv_rtl.Netlist in
  let module Expr = Dfv_rtl.Expr in
  Netlist.elaborate
    {
      (Netlist.empty "counter") with
      Netlist.inputs = [ { Netlist.port_name = "en"; port_width = 1 } ];
      outputs = [ ("q", Expr.sig_ "cnt") ];
      regs =
        [ Netlist.reg ~name:"cnt" ~width:4
            ~init:(Dfv_bitvec.Bitvec.create ~width:4 start)
            (Expr.mux (Expr.sig_ "en")
               (Expr.Binop (Expr.Add, Expr.sig_ "cnt", Expr.const ~width:4 1))
               (Expr.sig_ "cnt")) ];
    }

let test_portfolio_rtl_rtl () =
  let a = counter_rtl ~start:0 in
  match Portfolio.check_rtl_rtl ~jobs:2 ~a ~b:a ~bound:4 () with
  | Ok (Checker.Rtl_equivalent_to_bound (4, _)) -> ()
  | Ok _ -> Alcotest.fail "identical designs must be bounded-equivalent"
  | Error e -> Alcotest.failf "portfolio error: %s" (Dfv_error.to_string e)

let test_portfolio_rtl_rtl_diverges () =
  let a = counter_rtl ~start:0 and b = counter_rtl ~start:5 in
  match Portfolio.check_rtl_rtl ~jobs:2 ~a ~b ~bound:4 () with
  | Ok (Checker.Rtl_not_equivalent (cex, _)) ->
    Alcotest.(check string) "diverges on q" "q" cex.Checker.diverging_port
  | Ok _ -> Alcotest.fail "different resets must diverge"
  | Error e -> Alcotest.failf "portfolio error: %s" (Dfv_error.to_string e)

let suite =
  [ Alcotest.test_case "map preserves input order" `Quick test_map_order;
    Alcotest.test_case "map verdicts invariant under jobs" `Quick
      test_map_jobs_invariant;
    Alcotest.test_case "map of nothing" `Quick test_map_empty;
    Alcotest.test_case "job_seed is a pure spread" `Quick
      test_job_seed_deterministic;
    Alcotest.test_case "killed worker becomes Worker_crashed" `Quick
      test_worker_killed;
    Alcotest.test_case "raised error crosses the pipe structured" `Quick
      test_worker_raises;
    Alcotest.test_case "slow worker becomes Worker_timeout" `Slow
      test_worker_timeout;
    Alcotest.test_case "race cancels stragglers" `Slow test_race_cancels;
    Alcotest.test_case "race with no conclusive result" `Quick
      test_race_no_conclusive;
    Alcotest.test_case "portfolio slm-rtl equivalent" `Quick
      test_portfolio_slm_rtl_equivalent;
    Alcotest.test_case "portfolio slm-rtl counterexample" `Quick
      test_portfolio_slm_rtl_cex;
    Alcotest.test_case "portfolio rtl-rtl bounded equivalent" `Quick
      test_portfolio_rtl_rtl;
    Alcotest.test_case "portfolio rtl-rtl divergence" `Quick
      test_portfolio_rtl_rtl_diverges ]
