(* The fork-based worker pool: ordering, determinism across job counts,
   crash isolation (a killed worker is a recorded error, not a dead
   run), per-job timeouts, and portfolio cancellation. *)

module Pool = Dfv_par.Pool
module Portfolio = Dfv_par.Portfolio
module Dfv_error = Dfv_core.Dfv_error
module Json = Dfv_obs.Json
module Checker = Dfv_sec.Checker

let encode_int i = Json.Int i

let decode_int = function
  | Json.Int i -> Ok i
  | _ -> Error "expected int"

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected pool error: %s" (Dfv_error.to_string e)

let test_map_order () =
  let inputs = [ 5; 3; 9; 1; 7; 2 ] in
  let out =
    Pool.map ~jobs:3 ~encode:encode_int ~decode:decode_int
      (fun x -> x * x)
      inputs
  in
  Alcotest.(check (list int))
    "squares in input order"
    (List.map (fun x -> x * x) inputs)
    (List.map ok out)

let test_map_jobs_invariant () =
  let inputs = List.init 9 (fun i -> i) in
  let run jobs =
    Pool.map ~jobs ~encode:encode_int ~decode:decode_int
      (fun x -> (x * 31) + 7)
      inputs
    |> List.map ok
  in
  Alcotest.(check (list int)) "jobs=1 equals jobs=4" (run 1) (run 4)

let test_map_empty () =
  let out = Pool.map ~jobs:2 ~encode:encode_int ~decode:decode_int (fun x -> x) [] in
  Alcotest.(check int) "no outcomes" 0 (List.length out)

let test_job_seed_deterministic () =
  let a = Pool.job_seed ~seed:42 3 in
  let b = Pool.job_seed ~seed:42 3 in
  Alcotest.(check int) "pure function" a b;
  Alcotest.(check bool)
    "neighbouring indices differ" true
    (Pool.job_seed ~seed:42 3 <> Pool.job_seed ~seed:42 4);
  Alcotest.(check bool)
    "seeds differ" true
    (Pool.job_seed ~seed:1 3 <> Pool.job_seed ~seed:2 3);
  Alcotest.(check bool) "non-negative" true (Pool.job_seed ~seed:0 0 >= 0)

(* A worker that SIGKILLs itself mid-job models a segfault / OOM kill:
   the pool must record Worker_crashed for that job and still deliver
   every other result. *)
let test_worker_killed () =
  let out =
    Pool.map ~jobs:2 ~encode:encode_int ~decode:decode_int
      (fun x ->
        if x = 1 then Unix.kill (Unix.getpid ()) Sys.sigkill;
        x * 10)
      [ 0; 1; 2 ]
  in
  let contains hay needle =
    let h = String.length hay and n = String.length needle in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    n = 0 || go 0
  in
  (match out with
  | [ Ok 0; Error (Dfv_error.Worker_crashed { detail; _ }); Ok 20 ] ->
    Alcotest.(check bool)
      "detail names the signal" true
      (contains detail "SIGKILL" || contains detail "signal")
  | _ -> Alcotest.fail "expected [Ok 0; Error Worker_crashed; Ok 20]")

(* A worker raising stays an in-taxonomy error (carried across the pipe
   as structured JSON), distinct from a crash. *)
let test_worker_raises () =
  let out =
    Pool.map ~jobs:2 ~encode:encode_int ~decode:decode_int
      (fun x -> if x = 1 then failwith "boom" else x)
      [ 0; 1 ]
  in
  match out with
  | [ Ok 0; Error (Dfv_error.Internal m) ] ->
    Alcotest.(check string) "message survives the pipe" "boom" m
  | _ -> Alcotest.fail "expected [Ok 0; Error Internal]"

(* A worker exceeding the wall-clock budget is killed and reported as
   Worker_timeout — never blocks the campaign. *)
let test_worker_timeout () =
  let t0 = Unix.gettimeofday () in
  let out =
    Pool.map ~jobs:2 ~timeout:0.5 ~heartbeat:0.1
      ~label:(Printf.sprintf "job%d")
      ~encode:encode_int ~decode:decode_int
      (fun x ->
        if x = 1 then Unix.sleep 60;
        x)
      [ 0; 1 ]
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool) "killed promptly, not after 60s" true (elapsed < 30.0);
  match out with
  | [ Ok 0; Error (Dfv_error.Worker_timeout { job; seconds }) ] ->
    Alcotest.(check string) "labelled" "job1" job;
    Alcotest.(check bool) "budget recorded" true (seconds = 0.5)
  | _ -> Alcotest.fail "expected [Ok 0; Error Worker_timeout]"

(* Race: the first conclusive result wins and the stragglers are
   cancelled (their outcomes stay None). *)
let test_race_cancels () =
  let t0 = Unix.gettimeofday () in
  let r =
    Pool.race ~jobs:3 ~heartbeat:0.1 ~encode:encode_int ~decode:decode_int
      ~conclusive:(fun v -> v >= 0)
      (fun x ->
        if x = 0 then 100 else (Unix.sleep 60; -1))
      [ 0; 1; 2 ]
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool) "returned promptly" true (elapsed < 30.0);
  (match r.Pool.winner with
  | Some (0, 100) -> ()
  | _ -> Alcotest.fail "expected job 0 to win with 100");
  Alcotest.(check bool)
    "losers cancelled" true
    (r.Pool.outcomes.(1) = None && r.Pool.outcomes.(2) = None)

let test_race_no_conclusive () =
  let r =
    Pool.race ~jobs:2 ~encode:encode_int ~decode:decode_int
      ~conclusive:(fun _ -> false)
      (fun x -> x + 1)
      [ 0; 1 ]
  in
  Alcotest.(check bool) "no winner" true (r.Pool.winner = None);
  Alcotest.(check bool)
    "all outcomes filled" true
    (r.Pool.outcomes.(0) = Some (Ok 1) && r.Pool.outcomes.(1) = Some (Ok 2))

(* --- portfolio SEC ----------------------------------------------------- *)

let alu_pair () =
  let t = Dfv_designs.Alu.make ~width:8 () in
  (t.Dfv_designs.Alu.slm, t.Dfv_designs.Alu.rtl, t.Dfv_designs.Alu.spec)

let test_portfolio_slm_rtl_equivalent () =
  let slm, rtl, spec = alu_pair () in
  match Portfolio.check_slm_rtl ~jobs:2 ~slm ~rtl ~spec () with
  | Ok (Checker.Equivalent _) -> ()
  | Ok (Checker.Not_equivalent _) -> Alcotest.fail "alu should be equivalent"
  | Ok (Checker.Unknown _) -> Alcotest.fail "alu should be decided"
  | Error e -> Alcotest.failf "portfolio error: %s" (Dfv_error.to_string e)

let test_portfolio_slm_rtl_cex () =
  let slm, rtl, spec = alu_pair () in
  (* Break the RTL with the first enumerated mutation so the race must
     produce (and the parent must reconstruct) a counterexample. *)
  let fault = List.hd (Dfv_fault.Fault.enumerate_rtl ~seed:0 ~max_faults:1 rtl) in
  let rtl' = fault.Dfv_fault.Fault.rf_apply rtl in
  match Portfolio.check_slm_rtl ~jobs:2 ~slm ~rtl:rtl' ~spec () with
  | Ok (Checker.Not_equivalent (cex, _)) ->
    Alcotest.(check bool)
      "cex carries parameters" true
      (cex.Checker.params <> []);
    Alcotest.(check bool)
      "cex re-simulated to failing checks" true
      (cex.Checker.failed_checks <> [])
  | Ok (Checker.Equivalent _) -> Alcotest.fail "mutant not detected"
  | Ok (Checker.Unknown _) -> Alcotest.fail "mutant should be decided"
  | Error e -> Alcotest.failf "portfolio error: %s" (Dfv_error.to_string e)

let counter_rtl ~start =
  (* A 4-bit counter from [start]; two instances with different reset
     values diverge at frame 0 on the output. *)
  let module Netlist = Dfv_rtl.Netlist in
  let module Expr = Dfv_rtl.Expr in
  Netlist.elaborate
    {
      (Netlist.empty "counter") with
      Netlist.inputs = [ { Netlist.port_name = "en"; port_width = 1 } ];
      outputs = [ ("q", Expr.sig_ "cnt") ];
      regs =
        [ Netlist.reg ~name:"cnt" ~width:4
            ~init:(Dfv_bitvec.Bitvec.create ~width:4 start)
            (Expr.mux (Expr.sig_ "en")
               (Expr.Binop (Expr.Add, Expr.sig_ "cnt", Expr.const ~width:4 1))
               (Expr.sig_ "cnt")) ];
    }

let test_portfolio_rtl_rtl () =
  let a = counter_rtl ~start:0 in
  match Portfolio.check_rtl_rtl ~jobs:2 ~a ~b:a ~bound:4 () with
  | Ok (Checker.Rtl_equivalent_to_bound (4, _)) -> ()
  | Ok _ -> Alcotest.fail "identical designs must be bounded-equivalent"
  | Error e -> Alcotest.failf "portfolio error: %s" (Dfv_error.to_string e)

let test_portfolio_rtl_rtl_diverges () =
  let a = counter_rtl ~start:0 and b = counter_rtl ~start:5 in
  match Portfolio.check_rtl_rtl ~jobs:2 ~a ~b ~bound:4 () with
  | Ok (Checker.Rtl_not_equivalent (cex, _)) ->
    Alcotest.(check string) "diverges on q" "q" cex.Checker.diverging_port
  | Ok _ -> Alcotest.fail "different resets must diverge"
  | Error e -> Alcotest.failf "portfolio error: %s" (Dfv_error.to_string e)

(* --- journal: durability and the corruption policy -------------------- *)

module Journal = Dfv_par.Journal

let tmp_journal () = Filename.temp_file "dfv_journal" ".jsonl"

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let jok = function
  | Ok j -> j
  | Error m -> Alcotest.failf "unexpected journal error: %s" m

(* Fresh journal, three appends, reopen: everything replays, duplicate
   appends are no-ops, and a different campaign key is refused. *)
let test_journal_roundtrip () =
  let path = tmp_journal () in
  Sys.remove path;
  let j = jok (Journal.open_ ~path ~campaign:"campaign-a") in
  Journal.append j ~fp:"f1" (Json.Int 1);
  Journal.append j ~fp:"f2" (Json.Int 2);
  Journal.append j ~fp:"f2" (Json.Int 99);
  (* dup: disk record stands *)
  Journal.close j;
  let j = jok (Journal.open_ ~path ~campaign:"campaign-a") in
  Alcotest.(check int) "replayed" 2 (Journal.replayed j);
  Alcotest.(check bool) "not torn" false (Journal.torn j);
  Alcotest.(check (option int))
    "f1 payload" (Some 1)
    (match Journal.find j "f1" with Some (Json.Int i) -> Some i | _ -> None);
  Alcotest.(check (option int))
    "f2 kept the first payload" (Some 2)
    (match Journal.find j "f2" with Some (Json.Int i) -> Some i | _ -> None);
  Journal.close j;
  (match Journal.open_ ~path ~campaign:"campaign-b" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "campaign mismatch must be refused");
  Sys.remove path

(* A torn tail — one final segment cut mid-write — is tolerated: the
   segment is dropped, reported, and truncated away so the resumed run
   appends on a clean boundary. *)
let test_journal_torn_tail () =
  let path = tmp_journal () in
  Sys.remove path;
  let j = jok (Journal.open_ ~path ~campaign:"c") in
  Journal.append j ~fp:"f1" (Json.Int 1);
  Journal.close j;
  let intact = read_file path in
  write_file path (intact ^ {|{"schema":"dfv-jou|});
  let j = jok (Journal.open_ ~path ~campaign:"c") in
  Alcotest.(check bool) "torn reported" true (Journal.torn j);
  Alcotest.(check int) "intact record survives" 1 (Journal.replayed j);
  Journal.append j ~fp:"f2" (Json.Int 2);
  Journal.close j;
  (* the torn bytes are gone: a clean reopen sees two whole records *)
  let j = jok (Journal.open_ ~path ~campaign:"c") in
  Alcotest.(check bool) "repaired" false (Journal.torn j);
  Alcotest.(check int) "both records" 2 (Journal.replayed j);
  Journal.close j;
  Sys.remove path

(* More than one bad trailing segment cannot come from a single torn
   write — that is external corruption, and it is rejected.  So is an
   unparseable line in the interior.  A single unparseable final line
   (terminated or not) stays within the torn-tail tolerance. *)
let test_journal_garbage_rejected () =
  let path = tmp_journal () in
  Sys.remove path;
  let j = jok (Journal.open_ ~path ~campaign:"c") in
  Journal.append j ~fp:"f1" (Json.Int 1);
  Journal.close j;
  let intact = read_file path in
  write_file path (intact ^ "not json\ntrailing");
  (match Journal.open_ ~path ~campaign:"c" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "multi-segment garbage must be rejected");
  write_file path (intact ^ "not json\n" ^ intact);
  (match Journal.open_ ~path ~campaign:"c" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "an interior garbage line must be rejected");
  write_file path (intact ^ "not json\n");
  let j = jok (Journal.open_ ~path ~campaign:"c") in
  Alcotest.(check bool) "single trailing bad line is torn" true (Journal.torn j);
  Alcotest.(check int) "record survives" 1 (Journal.replayed j);
  Journal.close j;
  Sys.remove path

(* Duplicate fingerprints on disk (a crash between fsync and resume
   bookkeeping) are tolerated: first record wins, the rest are counted. *)
let test_journal_duplicate_fp () =
  let path = tmp_journal () in
  Sys.remove path;
  let j = jok (Journal.open_ ~path ~campaign:"c") in
  Journal.append j ~fp:"f1" (Json.Int 1);
  Journal.close j;
  let intact = read_file path in
  let last_record =
    match String.split_on_char '\n' intact with
    | [ _header; record; "" ] -> record
    | _ -> Alcotest.fail "unexpected journal shape"
  in
  write_file path (intact ^ last_record ^ "\n");
  let j = jok (Journal.open_ ~path ~campaign:"c") in
  Alcotest.(check int) "one record" 1 (Journal.replayed j);
  Alcotest.(check int) "one duplicate dropped" 1 (Journal.dropped j);
  Journal.close j;
  (* inspect agrees without touching the file *)
  let info =
    match Journal.inspect path with
    | Ok i -> i
    | Error m -> Alcotest.failf "inspect: %s" m
  in
  Alcotest.(check int) "inspect records" 1 info.Journal.info_records;
  Alcotest.(check int) "inspect dropped" 1 info.Journal.info_dropped;
  Sys.remove path

(* A complete record from a different journal format version is not a
   torn write; it is rejected rather than guessed at. *)
let test_journal_version_mismatch () =
  let path = tmp_journal () in
  Sys.remove path;
  let j = jok (Journal.open_ ~path ~campaign:"c") in
  Journal.append j ~fp:"f1" (Json.Int 1);
  Journal.close j;
  let intact = read_file path in
  let replace_all ~sub ~by s =
    let buf = Buffer.create (String.length s) in
    let n = String.length sub in
    let i = ref 0 in
    let len = String.length s in
    while !i < len do
      if !i + n <= len && String.sub s !i n = sub then begin
        Buffer.add_string buf by;
        i := !i + n
      end
      else begin
        Buffer.add_char buf s.[!i];
        incr i
      end
    done;
    Buffer.contents buf
  in
  write_file path
    (replace_all ~sub:{|"version":1|} ~by:{|"version":2|} intact);
  (match Journal.open_ ~path ~campaign:"c" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "version mismatch must be rejected");
  Sys.remove path

(* --- self-healing retry and cooperative stop -------------------------- *)

(* A transient worker crash (dies once, succeeds on retry) is healed by
   the pool without surfacing an error — visible only in the metrics. *)
let test_retry_heals_transient_crash () =
  let marker = Filename.temp_file "dfv_retry" ".marker" in
  Sys.remove marker;
  let healed = Dfv_obs.Metrics.counter "pool.retry.healed" in
  let before = Dfv_obs.Metrics.counter_value healed in
  let out =
    Pool.map ~jobs:2 ~encode:encode_int ~decode:decode_int
      (fun x ->
        if x = 1 && not (Sys.file_exists marker) then begin
          close_out (open_out marker);
          Unix.kill (Unix.getpid ()) Sys.sigkill
        end;
        x * 10)
      [ 0; 1; 2 ]
  in
  if Sys.file_exists marker then Sys.remove marker;
  Alcotest.(check (list int))
    "crash healed, verdicts unchanged" [ 0; 10; 20 ] (List.map ok out);
  Alcotest.(check bool)
    "healed counted in metrics" true
    (Dfv_obs.Metrics.counter_value healed > before)

(* After request_stop, a map returns promptly with every unfinished job
   marked Interrupted (exit code 4 material) — not Worker_crashed. *)
let test_stop_interrupts_map () =
  Fun.protect ~finally:Pool.reset_stop @@ fun () ->
  Pool.request_stop ();
  Alcotest.(check bool) "stop flag visible" true (Pool.stop_requested ());
  let out =
    Pool.map ~jobs:2 ~encode:encode_int ~decode:decode_int
      (fun x -> x * 10)
      [ 0; 1; 2 ]
  in
  List.iter
    (function
      | Error (Dfv_error.Interrupted _ as e) ->
        Alcotest.(check int) "resumable exit code" 4 (Dfv_error.exit_code e)
      | Ok _ -> Alcotest.fail "no job may run after request_stop"
      | Error e ->
        Alcotest.failf "expected Interrupted, got %s" (Dfv_error.to_string e))
    out

(* --- worker telemetry shipping ----------------------------------------- *)

module Metrics = Dfv_obs.Metrics
module Coverage = Dfv_obs.Coverage
module Trace = Dfv_obs.Trace

let telemetry_inputs = [ 0; 1; 2; 3; 4; 5 ]

(* A job touching every telemetry kind: a counter, a histogram, a gauge
   high-water mark, a covergroup sample, and a span. *)
let telemetry_work x =
  Metrics.add (Metrics.counter "t.par.count") (x + 1);
  Metrics.observe (Metrics.histogram "t.par.size") (x * 3);
  Metrics.set_gauge (Metrics.gauge "t.par.depth") (x + 1);
  let g = Coverage.group "t.par.cg" in
  let p =
    Coverage.point g "val"
      [ Coverage.bin "small" ~lo:0 ~hi:7; Coverage.bin "big" ~lo:8 ~hi:100 ]
  in
  Coverage.sample p (x * 3);
  Trace.with_span ~cat:"t" "par.work" (fun () -> ());
  x * 2

let pooled_telemetry jobs =
  Metrics.reset ();
  Coverage.clear ();
  Coverage.enable ();
  Trace.enable ();
  let out =
    Pool.map ~jobs ~encode:encode_int ~decode:decode_int telemetry_work
      telemetry_inputs
  in
  let m = Metrics.strip_timing (Metrics.snapshot ()) in
  let c = Coverage.snapshot () in
  let spans =
    List.length
      (List.filter (fun (n, _, _, _) -> n = "par.work") (Trace.events ()))
  in
  Trace.disable ();
  Coverage.disable ();
  (List.map ok out, Json.to_string m, Json.to_string c, spans)

(* The tentpole property: a sharded run's merged telemetry equals the
   jobs=1 run's byte for byte (timing fields projected away), and both
   equal an in-process sequential run of the same work. *)
let test_pool_telemetry_parity () =
  let out1, m1, c1, spans1 = pooled_telemetry 1 in
  let out4, m4, c4, spans4 = pooled_telemetry 4 in
  Alcotest.(check (list int)) "verdicts invariant under jobs" out1 out4;
  Alcotest.(check string) "merged metrics snapshots byte-identical" m1 m4;
  Alcotest.(check string) "merged coverage snapshots byte-identical" c1 c4;
  Alcotest.(check int) "every worker span absorbed (jobs=1)" 6 spans1;
  Alcotest.(check int) "every worker span absorbed (jobs=4)" 6 spans4;
  let pooled_count = Metrics.counter_value (Metrics.counter "t.par.count") in
  let pooled_hist =
    Metrics.histogram_count (Metrics.histogram "t.par.size")
  in
  let pooled_gmax = Metrics.gauge_max (Metrics.gauge "t.par.depth") in
  let pooled_shipped =
    Metrics.counter_value (Metrics.counter "pool.telemetry.shipped")
  in
  Alcotest.(check int)
    "one telemetry record per job" (List.length telemetry_inputs)
    pooled_shipped;
  (* In-process sequential reference. *)
  Metrics.reset ();
  Coverage.clear ();
  Coverage.enable ();
  List.iter (fun x -> ignore (telemetry_work x)) telemetry_inputs;
  Coverage.disable ();
  Alcotest.(check int)
    "merged counter equals sequential"
    (Metrics.counter_value (Metrics.counter "t.par.count"))
    pooled_count;
  Alcotest.(check int)
    "merged histogram count equals sequential"
    (Metrics.histogram_count (Metrics.histogram "t.par.size"))
    pooled_hist;
  Alcotest.(check int)
    "merged gauge high-water equals sequential"
    (Metrics.gauge_max (Metrics.gauge "t.par.depth"))
    pooled_gmax;
  Coverage.clear ()

(* A retried job's telemetry is merged exactly once: only the final
   (delivered) attempt's record counts; the killed attempt never ships. *)
let test_telemetry_retry_no_double_count () =
  let marker = Filename.temp_file "dfv_telem" ".marker" in
  Sys.remove marker;
  Metrics.reset ();
  let out =
    Pool.map ~jobs:2 ~encode:encode_int ~decode:decode_int
      (fun x ->
        Metrics.incr (Metrics.counter "t.par.attempt");
        if x = 1 && not (Sys.file_exists marker) then begin
          close_out (open_out marker);
          Unix.kill (Unix.getpid ()) Sys.sigkill
        end;
        x)
      [ 0; 1; 2 ]
  in
  if Sys.file_exists marker then Sys.remove marker;
  Alcotest.(check (list int)) "crash healed" [ 0; 1; 2 ] (List.map ok out);
  Alcotest.(check int)
    "each job merged exactly once despite the retry" 3
    (Metrics.counter_value (Metrics.counter "t.par.attempt"));
  Alcotest.(check int)
    "only delivered attempts shipped" 3
    (Metrics.counter_value (Metrics.counter "pool.telemetry.shipped"))

(* Journal-resumed campaigns: replayed mutants never fork, so they ship
   nothing and merged totals are not double-counted across the resume. *)
let test_telemetry_journal_resume_no_double_count () =
  let path = Filename.temp_file "dfv_tj" ".journal" in
  Sys.remove path;
  Fun.protect ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
  @@ fun () ->
  let campaign () =
    let slm, rtl, spec = alu_pair () in
    let pair = Dfv_core.Pair.create ~name:"alu" ~slm ~rtl ~spec in
    let j =
      match Journal.open_ ~path ~campaign:"telemetry-resume" with
      | Ok j -> j
      | Error e -> Alcotest.failf "journal: %s" e
    in
    Fun.protect ~finally:(fun () -> Journal.close j) @@ fun () ->
    Dfv_fault.Campaign.run ~seed:0 ~jobs:2 ~pool:true ~max_rtl_faults:4
      ~max_slm_faults:2 ~journal:j
      (Dfv_fault.Campaign.Sec_pair pair)
  in
  Metrics.reset ();
  let r1 = campaign () in
  let shipped = Metrics.counter "pool.telemetry.shipped" in
  Alcotest.(check bool)
    "first run ships worker telemetry" true
    (Metrics.counter_value shipped > 0);
  Metrics.reset ();
  let r2 = campaign () in
  Alcotest.(check int)
    "resumed run ships nothing (all mutants replayed)" 0
    (Metrics.counter_value shipped);
  Alcotest.(check int)
    "no solver work re-done on resume" 0
    (Metrics.counter_value (Metrics.counter "sat.solves"));
  let verdicts r =
    List.map
      (fun m ->
        ( m.Dfv_fault.Campaign.m_name,
          Dfv_fault.Campaign.verdict_label m.Dfv_fault.Campaign.verdict ))
      r.Dfv_fault.Campaign.r_results
  in
  Alcotest.(check (list (pair string string)))
    "replayed verdicts identical" (verdicts r1) (verdicts r2)

(* --- the domains executor ---------------------------------------------- *)

(* ORDERING MATTERS in this file's suite: OCaml 5 forbids Unix.fork in a
   process that has ever spawned a domain, so every fork-pool test (and
   every fork leg inside a mixed test) must run before the first test
   that touches Dpool's domains.  The suite list below keeps all
   fork-only tests first, then the campaign fork-parity leg, then the
   adaptive-dispatch test (fork legs internally first), and only then
   the domains-only tests. *)

module Dpool = Dfv_par.Dpool

let test_dpool_map_order () =
  let inputs = [ 5; 3; 9; 1; 7; 2 ] in
  let out = Dpool.map ~jobs:3 (fun x -> x * x) inputs in
  Alcotest.(check (list int))
    "squares in input order"
    (List.map (fun x -> x * x) inputs)
    (List.map ok out)

let test_dpool_jobs_invariant () =
  let inputs = List.init 9 (fun i -> i) in
  let run jobs = Dpool.map ~jobs (fun x -> (x * 31) + 7) inputs |> List.map ok in
  Alcotest.(check (list int)) "jobs=1 equals jobs=4" (run 1) (run 4);
  Alcotest.(check int) "map of nothing" 0 (List.length (Dpool.map (fun x -> x) []))

(* A raising job stays an in-taxonomy error on its own slot; every other
   job still completes — the in-process analogue of crash isolation for
   the benign (exception) failure class. *)
let test_dpool_raise_isolated () =
  let out =
    Dpool.map ~jobs:2 (fun x -> if x = 1 then failwith "boom" else x) [ 0; 1; 2 ]
  in
  match out with
  | [ Ok 0; Error (Dfv_error.Internal m); Ok 2 ] ->
    Alcotest.(check string) "message survives" "boom" m
  | _ -> Alcotest.fail "expected [Ok 0; Error Internal; Ok 2]"

(* After request_stop, no queued job runs and every unfinished slot is
   Interrupted — same contract as the fork pool's map. *)
let test_dpool_stop_interrupts () =
  Fun.protect ~finally:Pool.reset_stop @@ fun () ->
  Pool.request_stop ();
  let out = Dpool.map ~jobs:2 (fun x -> x * 10) [ 0; 1; 2 ] in
  List.iter
    (function
      | Error (Dfv_error.Interrupted _ as e) ->
        Alcotest.(check int) "resumable exit code" 4 (Dfv_error.exit_code e)
      | Ok _ -> Alcotest.fail "no job may run after request_stop"
      | Error e ->
        Alcotest.failf "expected Interrupted, got %s" (Dfv_error.to_string e))
    out

(* Race: the lowest-index conclusive result wins, and cancellation stops
   the remaining queue — jobs not yet started never run (they cannot be
   killed mid-flight like fork workers, so in-flight stragglers may
   finish, but their outcomes are discarded). *)
let test_dpool_race_wins_and_cancels () =
  let ran = Atomic.make 0 in
  let n = 64 in
  let r =
    Dpool.race ~jobs:4
      ~conclusive:(fun v -> v >= 0)
      (fun x ->
        Atomic.incr ran;
        if x = 0 then 100
        else begin
          (* losers are slow enough for the coordinator to wake and
             flip the cancel flag before the queue drains *)
          Unix.sleepf 0.002;
          -1
        end)
      (List.init n (fun i -> i))
  in
  (match r.Pool.winner with
  | Some (0, 100) -> ()
  | _ -> Alcotest.fail "expected job 0 to win with 100");
  Alcotest.(check bool)
    "cancellation pruned the queue" true
    (Atomic.get ran < n);
  (* a discarded straggler never surfaces as a recorded loss after the
     winner: every non-winning outcome is either unrecorded or a result
     delivered before the win *)
  Array.iteri
    (fun i o ->
      match o with
      | None -> ()
      | Some (Ok v) ->
        if i = 0 then Alcotest.(check int) "winner recorded" 100 v
      | Some (Error e) ->
        Alcotest.failf "unexpected error outcome: %s" (Dfv_error.to_string e))
    r.Pool.outcomes

(* Domains telemetry: merged worker-domain sinks equal an in-process
   sequential run of the same work — same property the fork pool's
   test_pool_telemetry_parity establishes, on the other executor.  The
   sequential reference runs in this test (it never forks), so the test
   is safe after the fork door has closed. *)
let dpool_telemetry jobs =
  Metrics.reset ();
  Coverage.clear ();
  Coverage.enable ();
  Trace.enable ();
  let out = Dpool.map ~jobs telemetry_work telemetry_inputs in
  let c = Coverage.snapshot () in
  let spans =
    List.length
      (List.filter (fun (n, _, _, _) -> n = "par.work") (Trace.events ()))
  in
  Trace.disable ();
  Coverage.disable ();
  let totals =
    ( Metrics.counter_value (Metrics.counter "t.par.count"),
      Metrics.histogram_count (Metrics.histogram "t.par.size"),
      Metrics.gauge_max (Metrics.gauge "t.par.depth") )
  in
  (List.map ok out, totals, Json.to_string c, spans)

let test_dpool_telemetry_parity () =
  let out1, totals1, c1, spans1 = dpool_telemetry 1 in
  let shipped1 =
    Metrics.counter_value (Metrics.counter "pool.telemetry.shipped")
  in
  let out4, totals4, c4, spans4 = dpool_telemetry 4 in
  Alcotest.(check (list int)) "verdicts invariant under jobs" out1 out4;
  Alcotest.(check string) "merged coverage byte-identical" c1 c4;
  Alcotest.(check int) "every domain span absorbed (jobs=1)" 6 spans1;
  Alcotest.(check int) "every domain span absorbed (jobs=4)" 6 spans4;
  Alcotest.(check int)
    "one telemetry record per job" (List.length telemetry_inputs) shipped1;
  (* In-process sequential reference: merged totals must coincide. *)
  Metrics.reset ();
  Coverage.clear ();
  Coverage.enable ();
  List.iter (fun x -> ignore (telemetry_work x)) telemetry_inputs;
  Coverage.disable ();
  let totals_seq =
    ( Metrics.counter_value (Metrics.counter "t.par.count"),
      Metrics.histogram_count (Metrics.histogram "t.par.size"),
      Metrics.gauge_max (Metrics.gauge "t.par.depth") )
  in
  let pp3 (a, b, c) = Printf.sprintf "(%d,%d,%d)" a b c in
  Alcotest.(check string)
    "merged totals equal sequential (jobs=1)" (pp3 totals_seq) (pp3 totals1);
  Alcotest.(check string)
    "merged totals equal sequential (jobs=4)" (pp3 totals_seq) (pp3 totals4);
  Coverage.clear ()

(* --- cross-executor verdict determinism -------------------------------- *)

(* The acceptance bar for the whole executor: a fault campaign's verdict
   transcript is byte-identical across sequential, fork and domains at
   any job count — seeds derive from (campaign seed, mutant index), never
   from the executor. *)
let campaign_transcript ?pool ?exec ~jobs () =
  let slm, rtl, spec = alu_pair () in
  let pair = Dfv_core.Pair.create ~name:"alu" ~slm ~rtl ~spec in
  let r =
    Dfv_fault.Campaign.run ~seed:0 ~jobs ?pool ?exec ~max_rtl_faults:4
      ~max_slm_faults:2
      (Dfv_fault.Campaign.Sec_pair pair)
  in
  List.map
    (fun (m : Dfv_fault.Campaign.mutant_result) ->
      Printf.sprintf "%s[%s@%s]=%s" m.Dfv_fault.Campaign.m_name
        m.Dfv_fault.Campaign.m_class m.Dfv_fault.Campaign.m_site
        (Dfv_fault.Campaign.verdict_label m.Dfv_fault.Campaign.verdict))
    r.Dfv_fault.Campaign.r_results
  |> String.concat "\n"

(* Fork legs — runs while the fork door is still open (before any
   domains test). *)
let test_cross_executor_fork_parity () =
  let seq = campaign_transcript ~pool:false ~jobs:1 () in
  Alcotest.(check bool) "transcript non-trivial" true (String.length seq > 0);
  List.iter
    (fun jobs ->
      Alcotest.(check string)
        (Printf.sprintf "fork at %d jobs equals sequential" jobs)
        seq
        (campaign_transcript ~pool:true ~exec:`Fork ~jobs ()))
    [ 2; 4 ]

(* Domains legs — recomputes the sequential reference itself (running
   sequentially never forks), so it stays valid after the door closes. *)
let test_cross_executor_domains_parity () =
  let seq = campaign_transcript ~pool:false ~jobs:1 () in
  List.iter
    (fun (name, exec, jobs) ->
      Alcotest.(check string)
        (Printf.sprintf "%s at %d jobs equals sequential" name jobs)
        seq
        (campaign_transcript ~pool:true ~exec ~jobs ()))
    [ ("domains", `Domains, 1); ("domains", `Domains, 2);
      ("domains", `Domains, 4); ("auto", `Auto, 3) ]

(* --- adaptive dispatch -------------------------------------------------- *)

let exec_counters () =
  ( Metrics.counter_value (Metrics.counter "pool.exec.fork"),
    Metrics.counter_value (Metrics.counter "pool.exec.domains") )

(* `Auto resolves to exactly one executor per call (counted only under
   `Auto so explicit-mode runs keep byte-identical telemetry), and a
   cost hint decides without probing.  Fork legs run first inside the
   test: on a multicore host the domains legs spawn worker domains and
   close the fork door for the process. *)
let test_map_auto_dispatch () =
  let inputs = [ 1; 2; 3; 4 ] in
  let expected = List.map (fun x -> x * 2) inputs in
  let run ?hint exec =
    Dpool.map_auto ?hint ~exec ~encode:encode_int ~decode:decode_int
      (fun x -> x * 2)
      inputs
    |> List.map ok
  in
  Alcotest.(check bool)
    "fork door still open at test start" true (Dpool.fork_available ());
  (* fork legs *)
  let f0, d0 = exec_counters () in
  Alcotest.(check (list int)) "long hint verdicts" expected (run ~hint:`Long `Auto);
  let f1, _ = exec_counters () in
  Alcotest.(check int) "long hint routed to fork" (f0 + 1) f1;
  Alcotest.(check (list int)) "explicit fork verdicts" expected (run `Fork);
  let f2, d2 = exec_counters () in
  Alcotest.(check int) "explicit fork uncounted" f1 f2;
  Alcotest.(check int) "no domains so far" d0 d2;
  (* domains legs *)
  Alcotest.(check (list int)) "auto verdicts" expected (run `Auto);
  let f3, d3 = exec_counters () in
  Alcotest.(check int) "auto resolved to exactly one executor" 1
    (f3 - f2 + (d3 - d2));
  Alcotest.(check (list int)) "short hint verdicts" expected (run ~hint:`Short `Auto);
  let _, d4 = exec_counters () in
  Alcotest.(check int) "short hint routed to domains" (d3 + 1) d4;
  Alcotest.(check (list int)) "explicit domains verdicts" expected (run `Domains);
  let f5, d5 = exec_counters () in
  Alcotest.(check int) "explicit domains uncounted" d4 d5;
  Alcotest.(check int) "no stray fork dispatch" f3 f5;
  (* Whether the domains legs closed the fork door depends on the host:
     a single-worker pool runs inline on the calling domain (no spawn),
     so a 1-core host leaves the door open, while a multicore host
     spawned real worker domains and slammed it.  Exercise whichever
     side this host is on. *)
  let f6, d6 = exec_counters () in
  Alcotest.(check (list int))
    "long hint after the domains legs" expected (run ~hint:`Long `Auto);
  let f7, d7 = exec_counters () in
  if Dpool.fork_available () then begin
    (* inline single-worker pools never spawned a domain *)
    Alcotest.(check int) "door open: long hint still buys fork" (f6 + 1) f7;
    Alcotest.(check int) "door open: no stray domains" d6 d7
  end
  else begin
    Alcotest.(check int) "sticky dispatch: no fork" f6 f7;
    Alcotest.(check int) "sticky dispatch: domains" (d6 + 1) d7
  end

let test_domains_timeout_rejected () =
  Alcotest.check_raises "domains + timeout is a caller error"
    (Invalid_argument
       "Dpool: per-job timeouts require the fork executor (a domain \
        cannot be killed preemptively)")
    (fun () ->
      ignore
        (Dpool.map_auto ~exec:`Domains ~timeout:1.0 ~encode:encode_int
           ~decode:decode_int
           (fun x -> x)
           [ 0 ]))

let suite =
  [ Alcotest.test_case "map preserves input order" `Quick test_map_order;
    Alcotest.test_case "map verdicts invariant under jobs" `Quick
      test_map_jobs_invariant;
    Alcotest.test_case "map of nothing" `Quick test_map_empty;
    Alcotest.test_case "job_seed is a pure spread" `Quick
      test_job_seed_deterministic;
    Alcotest.test_case "killed worker becomes Worker_crashed" `Quick
      test_worker_killed;
    Alcotest.test_case "raised error crosses the pipe structured" `Quick
      test_worker_raises;
    Alcotest.test_case "slow worker becomes Worker_timeout" `Slow
      test_worker_timeout;
    Alcotest.test_case "race cancels stragglers" `Slow test_race_cancels;
    Alcotest.test_case "race with no conclusive result" `Quick
      test_race_no_conclusive;
    Alcotest.test_case "portfolio slm-rtl equivalent" `Quick
      test_portfolio_slm_rtl_equivalent;
    Alcotest.test_case "portfolio slm-rtl counterexample" `Quick
      test_portfolio_slm_rtl_cex;
    Alcotest.test_case "portfolio rtl-rtl bounded equivalent" `Quick
      test_portfolio_rtl_rtl;
    Alcotest.test_case "portfolio rtl-rtl divergence" `Quick
      test_portfolio_rtl_rtl_diverges;
    Alcotest.test_case "journal round-trip and campaign binding" `Quick
      test_journal_roundtrip;
    Alcotest.test_case "journal tolerates and repairs a torn tail" `Quick
      test_journal_torn_tail;
    Alcotest.test_case "journal rejects non-torn garbage" `Quick
      test_journal_garbage_rejected;
    Alcotest.test_case "journal drops duplicate fingerprints" `Quick
      test_journal_duplicate_fp;
    Alcotest.test_case "journal rejects a version mismatch" `Quick
      test_journal_version_mismatch;
    Alcotest.test_case "transient worker crash healed by retry" `Quick
      test_retry_heals_transient_crash;
    Alcotest.test_case "request_stop interrupts a map" `Quick
      test_stop_interrupts_map;
    Alcotest.test_case "sharded telemetry merges to the sequential run"
      `Quick test_pool_telemetry_parity;
    Alcotest.test_case "retried job telemetry merged exactly once" `Quick
      test_telemetry_retry_no_double_count;
    Alcotest.test_case "journal resume ships no duplicate telemetry" `Quick
      test_telemetry_journal_resume_no_double_count;
    (* fork-leg tests first, then the first domains spawn, then
       domains-only tests — see the ordering note above Dpool *)
    Alcotest.test_case "campaign verdicts invariant under fork executor"
      `Quick test_cross_executor_fork_parity;
    Alcotest.test_case "adaptive dispatch routes, counts, and sticks" `Quick
      test_map_auto_dispatch;
    Alcotest.test_case "dpool map preserves input order" `Quick
      test_dpool_map_order;
    Alcotest.test_case "dpool verdicts invariant under jobs" `Quick
      test_dpool_jobs_invariant;
    Alcotest.test_case "dpool raising job stays isolated" `Quick
      test_dpool_raise_isolated;
    Alcotest.test_case "dpool request_stop interrupts a map" `Quick
      test_dpool_stop_interrupts;
    Alcotest.test_case "dpool race wins lowest index and cancels" `Quick
      test_dpool_race_wins_and_cancels;
    Alcotest.test_case "dpool telemetry merges to the sequential run" `Quick
      test_dpool_telemetry_parity;
    Alcotest.test_case "campaign verdicts invariant under domains executor"
      `Quick test_cross_executor_domains_parity;
    Alcotest.test_case "domains executor rejects a timeout" `Quick
      test_domains_timeout_rejected ]
