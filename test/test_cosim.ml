(* Tests for the co-simulation framework: scoreboards, stream stages,
   pipelines, and the tagged transaction engine. *)

open Dfv_bitvec
open Dfv_rtl
open Dfv_cosim

let check_int = Alcotest.check Alcotest.int
let check_bool = Alcotest.check Alcotest.bool
let bv w x = Bitvec.create ~width:w x

(* --- scoreboard ---------------------------------------------------------- *)

let test_scoreboard_exact () =
  let sb = Scoreboard.create Scoreboard.Exact_cycle in
  Scoreboard.expect sb ~cycle:3 (bv 8 42);
  Scoreboard.expect sb ~cycle:4 (bv 8 43);
  Scoreboard.observe sb ~cycle:3 (bv 8 42);
  Scoreboard.observe sb ~cycle:4 (bv 8 43);
  let r = Scoreboard.report sb in
  check_bool "ok" true (Scoreboard.ok r);
  check_int "matched" 2 r.Scoreboard.matched;
  check_bool "latencies all zero" true
    (List.for_all (( = ) 0) r.Scoreboard.latencies)

let test_scoreboard_exact_rejects_late () =
  (* Value correct but one cycle late: Exact_cycle flags it — the
     paper's point that cycle-approximate SLMs can't use this policy. *)
  let sb = Scoreboard.create Scoreboard.Exact_cycle in
  Scoreboard.expect sb ~cycle:3 (bv 8 42);
  Scoreboard.observe sb ~cycle:4 (bv 8 42);
  let r = Scoreboard.report sb in
  check_bool "not ok" false (Scoreboard.ok r);
  check_int "one mismatch" 1 (List.length r.Scoreboard.mismatches)

let test_scoreboard_in_order () =
  (* Same data, late and jittery: In_order accepts and records latency. *)
  let sb = Scoreboard.create Scoreboard.In_order in
  Scoreboard.expect sb ~cycle:0 (bv 8 1);
  Scoreboard.expect sb ~cycle:1 (bv 8 2);
  Scoreboard.expect sb ~cycle:2 (bv 8 3);
  Scoreboard.observe sb ~cycle:5 (bv 8 1);
  Scoreboard.observe sb ~cycle:9 (bv 8 2);
  Scoreboard.observe sb ~cycle:10 (bv 8 3);
  let r = Scoreboard.report sb in
  check_bool "ok" true (Scoreboard.ok r);
  check_bool "latencies recorded" true (r.Scoreboard.latencies = [ 5; 8; 8 ])

let test_scoreboard_in_order_value_mismatch () =
  let sb = Scoreboard.create Scoreboard.In_order in
  Scoreboard.expect sb ~cycle:0 (bv 8 1);
  Scoreboard.observe sb ~cycle:1 (bv 8 9);
  let r = Scoreboard.report sb in
  check_bool "not ok" false (Scoreboard.ok r);
  match r.Scoreboard.mismatches with
  | [ m ] ->
    check_bool "expected recorded" true (m.Scoreboard.expected = Some (bv 8 1));
    check_bool "observed recorded" true (Bitvec.equal m.Scoreboard.observed (bv 8 9))
  | _ -> Alcotest.fail "expected exactly one mismatch"

let test_scoreboard_in_order_rejects_reorder () =
  (* Reordered completions break the in-order policy... *)
  let sb = Scoreboard.create Scoreboard.In_order in
  Scoreboard.expect sb ~cycle:0 (bv 8 1);
  Scoreboard.expect sb ~cycle:0 (bv 8 2);
  Scoreboard.observe sb ~cycle:1 (bv 8 2);
  Scoreboard.observe sb ~cycle:2 (bv 8 1);
  check_bool "reorder rejected" false (Scoreboard.ok (Scoreboard.report sb))

let test_scoreboard_out_of_order () =
  (* ... and the tagged policy absorbs exactly the same trace. *)
  let sb = Scoreboard.create Scoreboard.Out_of_order in
  Scoreboard.expect sb ~tag:(bv 4 0) ~cycle:0 (bv 8 1);
  Scoreboard.expect sb ~tag:(bv 4 1) ~cycle:0 (bv 8 2);
  Scoreboard.observe sb ~tag:(bv 4 1) ~cycle:1 (bv 8 2);
  Scoreboard.observe sb ~tag:(bv 4 0) ~cycle:2 (bv 8 1);
  check_bool "reorder accepted" true (Scoreboard.ok (Scoreboard.report sb));
  (* Same tag used twice FIFOs per tag. *)
  let sb2 = Scoreboard.create Scoreboard.Out_of_order in
  Scoreboard.expect sb2 ~tag:(bv 4 7) ~cycle:0 (bv 8 1);
  Scoreboard.expect sb2 ~tag:(bv 4 7) ~cycle:1 (bv 8 2);
  Scoreboard.observe sb2 ~tag:(bv 4 7) ~cycle:3 (bv 8 1);
  Scoreboard.observe sb2 ~tag:(bv 4 7) ~cycle:4 (bv 8 2);
  check_bool "per-tag fifo" true (Scoreboard.ok (Scoreboard.report sb2))

let test_scoreboard_unconsumed () =
  let sb = Scoreboard.create Scoreboard.In_order in
  Scoreboard.expect sb ~cycle:0 (bv 8 1);
  Scoreboard.expect sb ~cycle:0 (bv 8 2);
  Scoreboard.observe sb ~cycle:1 (bv 8 1);
  let r = Scoreboard.report sb in
  check_bool "not ok" false (Scoreboard.ok r);
  check_int "one unconsumed" 1 r.Scoreboard.unconsumed

let test_scoreboard_flags_injected_corruption () =
  (* Fault-injection at the stream level: corrupt one element of an
     otherwise healthy RTL output stream and the scoreboard must flag
     exactly that element — the detection path the faultsim campaigns
     rely on. *)
  let n = 32 and victim = 17 in
  let golden = Array.init n (fun i -> bv 8 ((i * 11) land 0xff)) in
  (* The corruption rides a real stream stage, the way a faulty link (or
     a mutated block) would inject it mid-pipeline. *)
  let corruptor =
    Stream.slm_stage ~name:"bitflip-fault"
      (Array.mapi (fun i v -> if i = victim then Bitvec.lognot v else v))
  in
  let corrupt, _ = Stream.run_stage corruptor golden in
  let sb = Scoreboard.create Scoreboard.In_order in
  Array.iteri (fun i v -> Scoreboard.expect sb ~cycle:i v) golden;
  Array.iteri (fun i v -> Scoreboard.observe sb ~cycle:(i + 2) v) corrupt;
  let r = Scoreboard.report sb in
  check_bool "corruption flagged" false (Scoreboard.ok r);
  (match r.Scoreboard.mismatches with
  | [ m ] ->
    check_int "flagged at the corrupted cycle" (victim + 2) m.Scoreboard.at_cycle;
    check_bool "expected value recorded" true
      (m.Scoreboard.expected = Some golden.(victim))
  | ms -> Alcotest.failf "expected 1 mismatch, got %d" (List.length ms));
  check_int "clean elements still match" (n - 1) r.Scoreboard.matched;
  (* Same trace, uncorrupted: clean — the checker has no false alarms. *)
  let sb2 = Scoreboard.create Scoreboard.In_order in
  Array.iteri (fun i v -> Scoreboard.expect sb2 ~cycle:i v) golden;
  Array.iteri (fun i v -> Scoreboard.observe sb2 ~cycle:(i + 2) v) golden;
  check_bool "no false alarm" true (Scoreboard.ok (Scoreboard.report sb2))

(* --- stream stages --------------------------------------------------------- *)

(* One-cycle-latency incrementer with a valid chain. *)
let rtl_inc_stream () =
  let open Expr in
  Netlist.elaborate
    {
      (Netlist.empty "inc_stream") with
      Netlist.inputs =
        [ { Netlist.port_name = "din"; port_width = 8 };
          { Netlist.port_name = "vin"; port_width = 1 } ];
      regs =
        [ Netlist.reg ~name:"d1" ~width:8 (sig_ "din" +: const ~width:8 1);
          Netlist.reg ~name:"v1" ~width:1 (sig_ "vin") ];
      outputs = [ ("dout", sig_ "d1"); ("vout", sig_ "v1") ];
    }

let test_rtl_stage_with_valid () =
  let stage =
    Stream.rtl_stage ~name:"inc" ~rtl:(rtl_inc_stream ()) ~in_port:"din"
      ~out_port:"dout" ~in_valid:"vin" ~out_valid:"vout" ()
  in
  let input = Array.init 10 (fun i -> bv 8 i) in
  let out, stats = Stream.run_stage stage input in
  check_int "count" 10 (Array.length out);
  Array.iteri
    (fun i v -> check_int (Printf.sprintf "elem %d" i) (i + 1) (Bitvec.to_int v))
    out;
  check_bool "rtl kind" true (stats.Stream.kind = `Rtl);
  check_int "cycles = n + latency" 11 stats.Stream.cycles

let test_rtl_stage_with_stalls () =
  (* Stall every third cycle: output data unchanged, cycles increase —
     the variable-latency scenario of experiment C7. *)
  let stage_stalled =
    Stream.rtl_stage ~name:"inc" ~rtl:(rtl_inc_stream ()) ~in_port:"din"
      ~out_port:"dout" ~in_valid:"vin" ~out_valid:"vout"
      ~stall:(fun c -> c mod 3 = 2) ()
  in
  let input = Array.init 9 (fun i -> bv 8 (10 + i)) in
  let out, stats = Stream.run_stage stage_stalled input in
  check_int "count" 9 (Array.length out);
  Array.iteri
    (fun i v ->
      check_int (Printf.sprintf "elem %d" i) (11 + i) (Bitvec.to_int v))
    out;
  check_bool "stalls cost cycles" true (stats.Stream.cycles > 10)

let test_rtl_stage_budget_error () =
  (* A design whose valid never rises exhausts the budget. *)
  let open Expr in
  let dead =
    Netlist.elaborate
      {
        (Netlist.empty "dead") with
        Netlist.inputs =
          [ { Netlist.port_name = "din"; port_width = 8 };
            { Netlist.port_name = "vin"; port_width = 1 } ];
        outputs =
          [ ("dout", sig_ "din"); ("vout", const ~width:1 0) ];
      }
  in
  let stage =
    Stream.rtl_stage ~name:"dead" ~rtl:dead ~in_port:"din" ~out_port:"dout"
      ~in_valid:"vin" ~out_valid:"vout" ~max_cycles:50 ()
  in
  check_bool "raises" true
    (match Stream.run_stage stage (Array.init 4 (fun i -> bv 8 i)) with
    | exception Stream.Stage_error _ -> true
    | _ -> false)

let test_rtl_stage_unknown_port () =
  check_bool "raises" true
    (match
       Stream.rtl_stage ~name:"x" ~rtl:(rtl_inc_stream ()) ~in_port:"nope"
         ~out_port:"dout" ()
     with
    | exception Stream.Stage_error _ -> true
    | _ -> false)

let test_pipeline_plug_and_play () =
  (* SLM 3-stage pipeline: +1, *2, -3.  Swap the middle stage for RTL and
     the end-to-end result must not change (paper Section 4.2). *)
  let slm_inc = Stream.slm_stage ~name:"inc" (Array.map (fun v -> Bitvec.add v (bv 8 1))) in
  let slm_dbl =
    Stream.slm_stage ~name:"dbl" (Array.map (fun v -> Bitvec.shift_left v 1))
  in
  let slm_sub =
    Stream.slm_stage ~name:"sub" (Array.map (fun v -> Bitvec.sub v (bv 8 3)))
  in
  let open Expr in
  let rtl_dbl =
    Netlist.elaborate
      {
        (Netlist.empty "dbl") with
        Netlist.inputs =
          [ { Netlist.port_name = "din"; port_width = 8 };
            { Netlist.port_name = "vin"; port_width = 1 } ];
        regs =
          [ Netlist.reg ~name:"d1" ~width:8
              (sig_ "din" <<: const ~width:1 1);
            Netlist.reg ~name:"v1" ~width:1 (sig_ "vin") ];
        outputs = [ ("dout", sig_ "d1"); ("vout", sig_ "v1") ];
      }
  in
  let rtl_stage_dbl =
    Stream.rtl_stage ~name:"dbl_rtl" ~rtl:rtl_dbl ~in_port:"din"
      ~out_port:"dout" ~in_valid:"vin" ~out_valid:"vout" ()
  in
  let input = Array.init 16 (fun i -> bv 8 (i * 3)) in
  let pure, _ = Stream.run_pipeline [ slm_inc; slm_dbl; slm_sub ] input in
  let mixed, stats =
    Stream.run_pipeline [ slm_inc; rtl_stage_dbl; slm_sub ] input
  in
  check_bool "outputs equal" true
    (Array.for_all2 Bitvec.equal pure mixed);
  check_int "three stages" 3 (List.length stats)

(* --- transaction engine ------------------------------------------------------ *)

(* Fixed 2-cycle-latency echo: resp_data = data + 1, tag carried along. *)
let rtl_echo () =
  let open Expr in
  Netlist.elaborate
    {
      (Netlist.empty "echo") with
      Netlist.inputs =
        [ { Netlist.port_name = "valid"; port_width = 1 };
          { Netlist.port_name = "tag"; port_width = 4 };
          { Netlist.port_name = "data"; port_width = 8 } ];
      regs =
        [ Netlist.reg ~name:"v1" ~width:1 (sig_ "valid");
          Netlist.reg ~name:"t1" ~width:4 (sig_ "tag");
          Netlist.reg ~name:"d1" ~width:8 (sig_ "data" +: const ~width:8 1);
          Netlist.reg ~name:"v2" ~width:1 (sig_ "v1");
          Netlist.reg ~name:"t2" ~width:4 (sig_ "t1");
          Netlist.reg ~name:"d2" ~width:8 (sig_ "d1") ];
      outputs =
        [ ("resp_valid", sig_ "v2");
          ("resp_tag", sig_ "t2");
          ("resp_data", sig_ "d2") ];
    }

let echo_iface =
  {
    Txn_engine.idle = [ ("tag", bv 4 0); ("data", bv 8 0) ];
    issue_valid = "valid";
    req_tag = Some "tag";
    ready = None;
    resp_valid = "resp_valid";
    resp_tag = "resp_tag";
    resp_data = "resp_data";
  }

let test_txn_engine_basic () =
  let requests =
    List.init 8 (fun i ->
        { Txn_engine.tag = bv 4 i; payload = [ ("data", bv 8 (10 * i)) ] })
  in
  let completions, cycles =
    Txn_engine.run ~rtl:(rtl_echo ()) ~iface:echo_iface ~requests ()
  in
  check_int "all complete" 8 (List.length completions);
  List.iteri
    (fun i (c : Txn_engine.completion) ->
      check_int (Printf.sprintf "tag %d" i) i (Bitvec.to_int c.Txn_engine.c_tag);
      check_int
        (Printf.sprintf "data %d" i)
        ((10 * i) + 1)
        (Bitvec.to_int c.Txn_engine.c_data);
      check_int (Printf.sprintf "cycle %d" i) (i + 2) c.Txn_engine.c_cycle)
    completions;
  check_bool "cycle count sane" true (cycles >= 10)

let test_txn_engine_with_gaps () =
  let requests =
    List.init 4 (fun i ->
        { Txn_engine.tag = bv 4 i; payload = [ ("data", bv 8 i) ] })
  in
  let completions, cycles =
    Txn_engine.run ~rtl:(rtl_echo ()) ~iface:echo_iface ~requests
      ~gap:(fun c -> c mod 2 = 1)
      ()
  in
  check_int "all complete" 4 (List.length completions);
  check_bool "gaps cost cycles" true (cycles > 6)

let test_txn_engine_scoreboard_integration () =
  (* SLM golden: data+1 per tag.  Drive through the engine and check with
     an out-of-order scoreboard. *)
  let requests =
    List.init 6 (fun i ->
        { Txn_engine.tag = bv 4 i; payload = [ ("data", bv 8 (7 * i)) ] })
  in
  let sb = Scoreboard.create Scoreboard.Out_of_order in
  List.iteri
    (fun i r ->
      let data = List.assoc "data" r.Txn_engine.payload in
      Scoreboard.expect sb ~tag:r.Txn_engine.tag ~cycle:i
        (Bitvec.add data (bv 8 1)))
    requests;
  let completions, _ =
    Txn_engine.run ~rtl:(rtl_echo ()) ~iface:echo_iface ~requests ()
  in
  List.iter
    (fun (c : Txn_engine.completion) ->
      Scoreboard.observe sb ~tag:c.Txn_engine.c_tag ~cycle:c.Txn_engine.c_cycle
        c.Txn_engine.c_data)
    completions;
  check_bool "scoreboard clean" true (Scoreboard.ok (Scoreboard.report sb))

let test_txn_engine_timeout () =
  (* A design that never responds. *)
  let open Expr in
  let dead =
    Netlist.elaborate
      {
        (Netlist.empty "dead") with
        Netlist.inputs =
          [ { Netlist.port_name = "valid"; port_width = 1 };
            { Netlist.port_name = "tag"; port_width = 4 };
            { Netlist.port_name = "data"; port_width = 8 } ];
        outputs =
          [ ("resp_valid", const ~width:1 0);
            ("resp_tag", const ~width:4 0);
            ("resp_data", const ~width:8 0) ];
      }
  in
  check_bool "raises with missing tags" true
    (match
       Txn_engine.run ~rtl:dead ~iface:echo_iface
         ~requests:[ { Txn_engine.tag = bv 4 3; payload = [ ("data", bv 8 0) ] } ]
         ~max_cycles:40 ()
     with
    | exception Txn_engine.Engine_error m ->
      (* The error message names the missing tag. *)
      let contains s sub =
        let n = String.length sub and h = String.length s in
        let rec go i = i + n <= h && (String.sub s i n = sub || go (i + 1)) in
        go 0
      in
      contains m "4'h3"
    | _ -> false)

let suite =
  [ Alcotest.test_case "scoreboard exact" `Quick test_scoreboard_exact;
    Alcotest.test_case "scoreboard exact rejects late" `Quick
      test_scoreboard_exact_rejects_late;
    Alcotest.test_case "scoreboard in-order" `Quick test_scoreboard_in_order;
    Alcotest.test_case "scoreboard in-order value mismatch" `Quick
      test_scoreboard_in_order_value_mismatch;
    Alcotest.test_case "scoreboard in-order rejects reorder" `Quick
      test_scoreboard_in_order_rejects_reorder;
    Alcotest.test_case "scoreboard out-of-order" `Quick
      test_scoreboard_out_of_order;
    Alcotest.test_case "scoreboard unconsumed" `Quick
      test_scoreboard_unconsumed;
    Alcotest.test_case "scoreboard flags injected corruption" `Quick
      test_scoreboard_flags_injected_corruption;
    Alcotest.test_case "rtl stage with valid" `Quick test_rtl_stage_with_valid;
    Alcotest.test_case "rtl stage with stalls" `Quick
      test_rtl_stage_with_stalls;
    Alcotest.test_case "rtl stage budget error" `Quick
      test_rtl_stage_budget_error;
    Alcotest.test_case "rtl stage unknown port" `Quick
      test_rtl_stage_unknown_port;
    Alcotest.test_case "pipeline plug-and-play" `Quick
      test_pipeline_plug_and_play;
    Alcotest.test_case "txn engine basic" `Quick test_txn_engine_basic;
    Alcotest.test_case "txn engine with gaps" `Quick test_txn_engine_with_gaps;
    Alcotest.test_case "txn engine + scoreboard" `Quick
      test_txn_engine_scoreboard_integration;
    Alcotest.test_case "txn engine timeout" `Quick test_txn_engine_timeout ]
