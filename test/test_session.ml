(* Tests for the incremental solving substrate: encoding reuse across
   queries, activation-literal scoping, unroll/product caches, and
   budgeted verdicts surfacing as Unknown at the checker level. *)

open Dfv_bitvec
open Dfv_aig
open Dfv_rtl
open Dfv_sec
open Dfv_designs

let check_bool = Alcotest.check Alcotest.bool
let check_int = Alcotest.check Alcotest.int
let bv w x = Bitvec.create ~width:w x

let is_sat (o : Dfv_sat.Solver.outcome) =
  match o with
  | Dfv_sat.Solver.Sat -> true
  | Dfv_sat.Solver.Unsat -> false
  | Dfv_sat.Solver.Unknown _ -> Alcotest.fail "unexpected unknown"

(* --- encoding reuse ----------------------------------------------------- *)

let test_shared_cone_reuse () =
  let s = Session.create () in
  let g = Session.graph s in
  let a = Word.inputs ~name:"a" g 8 and b = Word.inputs ~name:"b" g 8 in
  let sum = Word.add g a b in
  (* First query encodes the adder cone from scratch. *)
  check_bool "sum can be 0" true
    (is_sat (Session.check s (Word.eq g sum (Word.const (bv 8 0)))));
  let st1 = Session.stats s in
  check_bool "fresh encoding happened" true (st1.Session.nodes_encoded > 0);
  (* Second query over the same cone: the comparator is new, the adder
     is answered by the existing encoding. *)
  check_bool "sum can be 77" true
    (is_sat (Session.check s (Word.eq g sum (Word.const (bv 8 77)))));
  let st2 = Session.stats s in
  check_bool "adder cone reused" true
    (st2.Session.nodes_reused > st1.Session.nodes_reused);
  check_int "two queries" 2 st2.Session.queries;
  check_int "no unknowns" 0 st2.Session.unknowns

let test_model_decode () =
  let s = Session.create () in
  let g = Session.graph s in
  let a = Word.inputs ~name:"a" g 8 in
  (match Session.check s (Word.eq g a (Word.const (bv 8 42))) with
  | Dfv_sat.Solver.Sat -> ()
  | _ -> Alcotest.fail "constraining a = 42 should be sat");
  check_bool "model decodes" true
    (Bitvec.equal (Session.model_word s a) (bv 8 42))

(* --- activation literals ------------------------------------------------ *)

let test_guard_retire_isolation () =
  let s = Session.create () in
  let g = Session.graph s in
  let a = Word.inputs ~name:"a" g 4 in
  let is5 = Word.eq g a (Word.const (bv 4 5)) in
  let act = Session.activation s in
  Session.guard s act is5;
  (* Under the activation, a is pinned to 5. *)
  (match Session.check ~assumptions:[ act ] s (Aig.not_ is5) with
  | Dfv_sat.Solver.Unsat -> ()
  | _ -> Alcotest.fail "guarded constraint not active");
  Session.retire s act;
  (* Retired: the same session answers unconstrained queries again. *)
  check_bool "constraint gone after retire" true
    (is_sat (Session.check s (Aig.not_ is5)))

let test_block_is_permanent () =
  let s = Session.create () in
  let g = Session.graph s in
  let a = Word.inputs ~name:"a" g 4 in
  Session.block s (Word.eq g a (Word.const (bv 4 3)));
  (match Session.check s (Word.eq g a (Word.const (bv 4 3))) with
  | Dfv_sat.Solver.Unsat -> ()
  | _ -> Alcotest.fail "blocked literal still satisfiable");
  check_bool "other values remain" true
    (is_sat (Session.check s (Word.eq g a (Word.const (bv 4 4)))))

(* --- unroll cache ------------------------------------------------------- *)

let counter_inc () =
  let open Expr in
  Netlist.elaborate
    {
      (Netlist.empty "counter_inc") with
      Netlist.regs =
        [ Netlist.reg ~name:"c" ~width:4 (sig_ "c" +: const ~width:4 1) ];
      outputs = [ ("q", sig_ "c") ];
    }

let counter_sub () =
  let open Expr in
  Netlist.elaborate
    {
      (Netlist.empty "counter_sub") with
      Netlist.regs =
        [ Netlist.reg ~name:"c" ~width:4 (sig_ "c" -: const ~width:4 15) ];
      outputs = [ ("q", sig_ "c") ];
    }

let test_unroll_cache_and_extension () =
  let s = Session.create () in
  let g = Session.graph s in
  let design = counter_inc () in
  let no_inputs _ = [] in
  let outs4 = Session.unroll_from_reset s design ~cycles:4 ~input_words:no_inputs in
  check_int "four cycles of outputs" 4 (Array.length outs4);
  check_int "no hit on first unroll" 0 (Session.stats s).Session.unroll_hits;
  (* Exact repeat: free, counted as a hit. *)
  let outs4' = Session.unroll_from_reset s design ~cycles:4 ~input_words:no_inputs in
  check_int "repeat is a cache hit" 1 (Session.stats s).Session.unroll_hits;
  check_bool "same words returned" true
    (List.assq "q" outs4.(3) == List.assq "q" outs4'.(3));
  (* Extension: continues the cached run instead of starting over. *)
  let outs6 = Session.unroll_from_reset s design ~cycles:6 ~input_words:no_inputs in
  check_int "extension is a cache hit" 2 (Session.stats s).Session.unroll_hits;
  check_bool "prefix preserved" true
    (List.assq "q" outs6.(3) == List.assq "q" outs4.(3));
  (* The unrolled counter is concretely correct: q@5 = 5 is forced. *)
  let q5 = List.assq "q" outs6.(5) in
  match Session.check s (Word.ne g q5 (Word.const (bv 4 5))) with
  | Dfv_sat.Solver.Unsat -> ()
  | _ -> Alcotest.fail "counter value at cycle 5 should be forced to 5"

(* --- product cache: deeper BMC extends the session ----------------------- *)

let test_bmc_deepening_reuses_product () =
  let session = Session.create () in
  let a = counter_inc () and b = counter_sub () in
  (match Checker.check_rtl_rtl ~session ~a ~b ~bound:5 () with
  | Checker.Rtl_equivalent_to_bound (5, _) -> ()
  | _ -> Alcotest.fail "expected equivalence to bound 5");
  let hits_before = (Session.stats session).Session.unroll_hits in
  (* Same session, deeper bound: the product machine is found in the
     cache and only frames 5..9 are newly synthesized. *)
  (match Checker.check_rtl_rtl ~session ~a ~b ~bound:10 () with
  | Checker.Rtl_equivalent_to_bound (10, _) -> ()
  | _ -> Alcotest.fail "expected equivalence to bound 10");
  let st = Session.stats session in
  check_bool "product cache hit" true (st.Session.unroll_hits > hits_before);
  check_bool "second run reused encodings" true (st.Session.nodes_reused > 0)

(* --- budgets surface as Unknown at the checker level --------------------- *)

let tiny_budget =
  { Dfv_sat.Solver.max_conflicts = Some 1; Dfv_sat.Solver.max_seconds = None }

(* Commutativity of multiplication is famously conflict-heavy for CDCL:
   one conflict is never enough, so the verdict must be Unknown. *)
let mul_ab () =
  let open Expr in
  Netlist.elaborate
    {
      (Netlist.empty "mul_ab") with
      Netlist.inputs =
        [ { Netlist.port_name = "a"; port_width = 8 };
          { Netlist.port_name = "b"; port_width = 8 } ];
      outputs = [ ("p", sig_ "a" *: sig_ "b") ];
    }

let mul_ba () =
  let open Expr in
  Netlist.elaborate
    {
      (Netlist.empty "mul_ba") with
      Netlist.inputs =
        [ { Netlist.port_name = "a"; port_width = 8 };
          { Netlist.port_name = "b"; port_width = 8 } ];
      outputs = [ ("p", sig_ "b" *: sig_ "a") ];
    }

let test_rtl_budget_unknown () =
  match
    Checker.check_rtl_rtl ~budget:tiny_budget ~a:(mul_ab ()) ~b:(mul_ba ())
      ~bound:1 ()
  with
  | Checker.Rtl_unknown (Dfv_sat.Solver.Conflict_limit, stats) ->
    check_bool "unknown counted" true (stats.Checker.unknowns > 0)
  | Checker.Rtl_unknown (Dfv_sat.Solver.Time_limit, _) ->
    Alcotest.fail "wrong unknown reason"
  | Checker.Rtl_equivalent_to_bound _ | Checker.Rtl_proved _
  | Checker.Rtl_not_equivalent _ -> Alcotest.fail "expected unknown"

let test_slm_budget_unknown () =
  let t = Gcd.make ~width:4 in
  match
    Checker.check_slm_rtl ~budget:tiny_budget ~slm:t.Gcd.slm ~rtl:t.Gcd.rtl
      ~spec:t.Gcd.spec ()
  with
  | Checker.Unknown (Dfv_sat.Solver.Conflict_limit, _) -> ()
  | Checker.Unknown (Dfv_sat.Solver.Time_limit, _) ->
    Alcotest.fail "wrong unknown reason"
  | Checker.Equivalent _ | Checker.Not_equivalent _ ->
    Alcotest.fail "gcd SEC cannot finish within one conflict"

let test_budget_then_unbudgeted_same_session () =
  (* A session whose default budget is tiny still completes a query when
     the call site overrides the budget — and the session stays usable. *)
  let session = Session.create ~budget:tiny_budget () in
  let a = counter_inc () and b = counter_sub () in
  let unlimited =
    { Dfv_sat.Solver.max_conflicts = None; Dfv_sat.Solver.max_seconds = None }
  in
  match Checker.check_rtl_rtl ~budget:unlimited ~session ~a ~b ~bound:3 () with
  | Checker.Rtl_equivalent_to_bound (3, _) -> ()
  | _ -> Alcotest.fail "override budget should let BMC finish"

let suite =
  [ Alcotest.test_case "shared cone reuse" `Quick test_shared_cone_reuse;
    Alcotest.test_case "model decode" `Quick test_model_decode;
    Alcotest.test_case "guard/retire isolation" `Quick
      test_guard_retire_isolation;
    Alcotest.test_case "block is permanent" `Quick test_block_is_permanent;
    Alcotest.test_case "unroll cache and extension" `Quick
      test_unroll_cache_and_extension;
    Alcotest.test_case "BMC deepening reuses product" `Quick
      test_bmc_deepening_reuses_product;
    Alcotest.test_case "rtl-rtl budget unknown" `Quick test_rtl_budget_unknown;
    Alcotest.test_case "slm-rtl budget unknown" `Quick test_slm_budget_unknown;
    Alcotest.test_case "budget override per call" `Quick
      test_budget_then_unbudgeted_same_session ]
