(* Quickstart: the full design-for-verification flow on one block.

   A GCD unit: the system-level model is Euclid's algorithm written in
   the conditioned HWIR style (static loop bound + conditional exit); the
   RTL iterates one modulo step per cycle.  We audit the pair, simulate
   it, prove it equivalent with SEC, then plant a bug and watch SEC
   produce a counterexample.

   Run with: dune exec examples/quickstart.exe *)

open Dfv_designs
open Dfv_core

let section title = Printf.printf "\n=== %s ===\n" title

let () =
  section "1. Build the design pair";
  let gcd = Gcd.make ~width:4 in
  let pair = Pair.create ~name:"gcd" ~slm:gcd.Gcd.slm ~rtl:gcd.Gcd.rtl ~spec:gcd.Gcd.spec in
  Printf.printf "SLM: Euclid in HWIR; RTL: sequential datapath (%d-cycle transaction)\n"
    gcd.Gcd.spec.Dfv_sec.Spec.rtl_cycles;

  section "2. Audit (Section 4 guidelines)";
  Format.printf "%a" Pair.pp_audit (Pair.audit pair);

  section "3. Run both models on a concrete value";
  let a, b = 12, 9 in
  Printf.printf "gcd(%d, %d): SLM says %d; " a b (Gcd.run_slm gcd a b);
  let r, cycles = Gcd.run_rtl gcd a b in
  Printf.printf "RTL says %d after %d cycles (variable latency!)\n" r cycles;

  section "4. Simulation-based comparison (Section 2, strategy a)";
  (match Flow.simulate ~vectors:500 pair with
  | Ok (Flow.Sim_clean { vectors }) ->
    Printf.printf "%d random transactions, no mismatch -- but no proof either.\n" vectors
  | Ok (Flow.Sim_mismatch _) -> print_endline "unexpected mismatch!"
  | Error e -> Printf.printf "simulation error: %s\n" (Dfv_error.to_string e));

  section "5. Sequential equivalence checking";
  (match Flow.sec pair with
  | Dfv_sec.Checker.Equivalent stats ->
    Printf.printf
      "EQUIVALENT, proved for all %d-bit inputs.\n\
       (miter: %d AIG nodes; SAT: %d conflicts, %d decisions; %.3fs)\n"
      gcd.Gcd.width stats.Dfv_sec.Checker.aig_ands
      stats.Dfv_sec.Checker.sat_conflicts stats.Dfv_sec.Checker.sat_decisions
      stats.Dfv_sec.Checker.wall_seconds
  | Dfv_sec.Checker.Not_equivalent _ | Dfv_sec.Checker.Unknown _ ->
    print_endline "unexpected!");

  section "6. Plant an RTL bug and let SEC find it";
  (* A realistic slip: the datapath loads b into x (swapped operand) only
     when a < b would not mask it... simplest: swap the iteration update. *)
  let open Dfv_rtl in
  let buggy_rtl =
    Netlist.elaborate
      {
        (Netlist.empty "gcd_buggy") with
        Netlist.inputs =
          [ { Netlist.port_name = "a"; port_width = 4 };
            { Netlist.port_name = "b"; port_width = 4 };
            { Netlist.port_name = "start"; port_width = 1 } ];
        wires =
          [ ( "iterate",
              Expr.(sig_ "busy" &: (sig_ "y" <>: const ~width:4 0)) ) ];
        regs =
          Expr.
            [ Netlist.reg
                ~enable:(sig_ "start" |: sig_ "iterate")
                ~name:"x" ~width:4
                (mux (sig_ "start") (sig_ "a") (sig_ "y"));
              (* BUG: y <- y mod x instead of x mod y. *)
              Netlist.reg
                ~enable:(sig_ "start" |: sig_ "iterate")
                ~name:"y" ~width:4
                (mux (sig_ "start") (sig_ "b") (sig_ "y" %: sig_ "x"));
              Netlist.reg ~name:"busy" ~width:1 (sig_ "busy" |: sig_ "start") ];
        outputs =
          Expr.
            [ ("result", sig_ "x");
              ("done_", sig_ "busy" &: (sig_ "y" ==: const ~width:4 0)) ];
      }
  in
  let buggy_pair = { pair with Pair.rtl = buggy_rtl } in
  (match Flow.sec buggy_pair with
  | Dfv_sec.Checker.Not_equivalent (cex, stats) ->
    Printf.printf "NOT EQUIVALENT (found in %.3fs). Counterexample:\n"
      stats.Dfv_sec.Checker.wall_seconds;
    List.iter
      (fun (n, v) ->
        match v with
        | Dfv_hwir.Interp.Vint bv ->
          Printf.printf "  %s = %d\n" n (Dfv_bitvec.Bitvec.to_int bv)
        | Dfv_hwir.Interp.Varr _ -> ())
      cex.Dfv_sec.Checker.params;
    (match cex.Dfv_sec.Checker.slm_result with
    | Some (Dfv_hwir.Interp.Vint bv) ->
      Printf.printf "  SLM (correct) result: %d\n" (Dfv_bitvec.Bitvec.to_int bv)
    | _ -> ());
    List.iter
      (fun ((c : Dfv_sec.Spec.check), got) ->
        Printf.printf "  RTL %s@%d produced: %d\n" c.Dfv_sec.Spec.rtl_port
          c.Dfv_sec.Spec.at_cycle
          (Dfv_bitvec.Bitvec.to_int got))
      cex.Dfv_sec.Checker.failed_checks
  | Dfv_sec.Checker.Equivalent _ | Dfv_sec.Checker.Unknown _ ->
    print_endline "bug not found?!");

  section "7. Bonus: behavioral synthesis from the same SLM";
  (* Section 4.3's other payoff: a conditioned SLM is also synthesizable.
     Generate an FSM+datapath RTL from the gcd model and prove it against
     its own source. *)
  let module Behsyn = Dfv_behsyn.Behsyn in
  let synth = Dfv_rtl.Netlist.elaborate (Behsyn.synthesize gcd.Gcd.slm) in
  (match
     Dfv_sec.Checker.check_slm_rtl ~slm:gcd.Gcd.slm ~rtl:synth
       ~spec:(Behsyn.spec gcd.Gcd.slm) ()
   with
  | Dfv_sec.Checker.Equivalent stats ->
    Printf.printf
      "synthesized RTL (FSM, worst case %d cycles) proved equivalent to its\n\
       source SLM in %.3fs -- correct-by-construction, checked.\n"
      (Behsyn.cycle_bound gcd.Gcd.slm)
      stats.Dfv_sec.Checker.wall_seconds
  | Dfv_sec.Checker.Not_equivalent _ | Dfv_sec.Checker.Unknown _ ->
    print_endline "synthesis bug?!");
  print_endline
    "\nThe generated module can also leave the ecosystem:\n";
  print_string
    (let lines = String.split_on_char '\n' (Dfv_rtl.Verilog.emit synth) in
     String.concat "\n" (List.filteri (fun i _ -> i < 8) lines));
  print_endline "\n  ... (Dfv_rtl.Verilog.emit for the rest)";

  print_endline "\nDone.  See examples/image_pipeline.ml for the paper's running example."
