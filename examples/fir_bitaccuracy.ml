(* Fixed-point bit-accuracy (Section 3.1.1) on a saturating FIR filter.

   Two SLMs for the same filter: one saturates after every MAC step (the
   bit-accurate model), one accumulates in a wide C int and saturates
   once at the end (the masked-overflow idiom).  Saturation is not a
   ring operation, so the two differ precisely when an intermediate sum
   overflows -- which the wide int silently absorbs.

   Run with: dune exec examples/fir_bitaccuracy.exe *)

open Dfv_designs
open Dfv_sec

let section title = Printf.printf "\n=== %s ===\n" title

let () =
  section "1. A hot filter: taps large enough to overflow intermediates";
  let t = Fir.make ~taps:[ 127; 127; 127; -128 ] () in
  Printf.printf "taps = [%s], samples %d-bit, accumulator %d-bit saturating\n"
    (String.concat "; " (List.map string_of_int t.Fir.taps))
    t.Fir.width t.Fir.acc_width;

  section "2. The divergence, concretely";
  let window = [| 127; 127; 127; 127 |] in
  Printf.printf "window [127;127;127;127]:\n";
  Printf.printf "  per-step saturation (= RTL): %d\n" (Fir.golden_exact t window);
  Printf.printf "  wide C accumulator         : %d  <- masked overflow\n"
    (Fir.golden_cstyle t window);

  section "3. Divergence rate over random windows";
  let st = Random.State.make [| 1 |] in
  let n = 20_000 in
  let diverging = ref 0 in
  for _ = 1 to n do
    let w = Array.init 4 (fun _ -> Random.State.int st 256) in
    if Fir.golden_exact t w <> Fir.golden_cstyle t w then incr diverging
  done;
  Printf.printf "%d / %d random windows diverge (%.1f%%)\n" !diverging n
    (100.0 *. float_of_int !diverging /. float_of_int n);

  section "4. SEC verdicts";
  let report name slm =
    match Checker.check_slm_rtl ~slm ~rtl:t.Fir.rtl ~spec:t.Fir.spec () with
    | Checker.Equivalent stats ->
      Printf.printf "  %-22s: EQUIVALENT (%.3fs)\n" name stats.Checker.wall_seconds
    | Checker.Not_equivalent (cex, stats) ->
      Printf.printf "  %-22s: NOT EQUIVALENT (%.3fs)" name stats.Checker.wall_seconds;
      (match List.assoc "x" cex.Checker.params with
      | Dfv_hwir.Interp.Varr a ->
        Printf.printf "  cex window [%s]\n"
          (String.concat "; "
             (Array.to_list
                (Array.map
                   (fun v -> string_of_int (Dfv_bitvec.Bitvec.to_signed_int v))
                   a)))
      | _ -> print_newline ())
    | Checker.Unknown _ -> Printf.printf "  %-22s: UNKNOWN\n" name
  in
  report "bit-accurate SLM" t.Fir.slm_exact;
  report "C-style SLM" t.Fir.slm_cstyle;

  section "5. With mild taps, both models are right";
  let mild = Fir.make ~taps:[ 3; -5; 7; 2 ] () in
  (match
     Checker.check_slm_rtl ~slm:mild.Fir.slm_cstyle ~rtl:mild.Fir.rtl
       ~spec:mild.Fir.spec ()
   with
  | Checker.Equivalent stats ->
    Printf.printf
      "  C-style SLM with taps [3;-5;7;2]: EQUIVALENT (%.3fs)\n\
      \  (intermediates cannot overflow -- SEC tells you exactly when the\n\
      \   C idiom is safe and when it is not)\n"
      stats.Checker.wall_seconds
  | Checker.Not_equivalent _ | Checker.Unknown _ -> print_endline "unexpected!");

  section "6. Streaming RTL vs whole-signal SLM (transactor-based cosim)";
  let st = Random.State.make [| 2 |] in
  let signal = Array.init 256 (fun _ -> Random.State.int st 256) in
  let expected = Fir.filter_signal mild signal in
  let got, cycles = Fir.run_rtl_stream mild signal in
  Printf.printf "  %d samples, %d RTL cycles: %s\n" (Array.length signal) cycles
    (if expected = got then "streams IDENTICAL" else "DIFFER!")
