(* The paper's running example (Section 3.2): an image-processing block
   whose SLM reads the whole image as one array while the RTL reads a
   pixel stream.

   We build a 3x3 sharpening convolution, validate the streaming RTL
   against the whole-image SLM through stream transactors (strategy 2a),
   prove the window datapath equivalent by SEC at the block level, and
   finish with the partitioned 3-block chain: incremental per-block SEC
   localizing a planted bug (Section 4.1/4.2), and SLM/RTL plug-and-play.

   Run with: dune exec examples/image_pipeline.exe *)

open Dfv_designs
open Dfv_sec

let section title = Printf.printf "\n=== %s ===\n" title

let render img =
  (* Tiny ASCII rendering: the "plug the SLM into a real environment and
     look at the pictures" validation of Section 2, step 1. *)
  Array.iter
    (fun row ->
      Array.iter
        (fun p ->
          let shades = " .:-=+*#%@" in
          print_char shades.[min 9 (p * 10 / 256)])
        row;
      print_newline ())
    img

let () =
  let conv = Conv_image.make ~kernel:Conv_image.sharpen ~shift:2 () in

  section "1. A test image through the whole-image SLM";
  let w, h = 24, 10 in
  let img =
    Array.init h (fun r ->
        Array.init w (fun c ->
            (* Diagonal gradient with a bright blob. *)
            let base = (r * 9) + (c * 5) in
            let blob =
              if (r - 5) * (r - 5) + ((c - 12) * (c - 12) / 2) < 6 then 140
              else 0
            in
            min 255 (base + blob)))
  in
  render img;
  let slm_out = Conv_image.golden conv img in
  Printf.printf "-- sharpened by the SLM (%dx%d -> %dx%d):\n" h w (h - 2) (w - 2);
  render slm_out;

  section "2. The same image through the streaming RTL (wrapped-RTL)";
  let rtl_out, cycles = Conv_image.run_stream conv img in
  Printf.printf "RTL consumed %d cycles for %d pixels (line buffers + window regs)\n"
    cycles (w * h);
  let equal =
    Array.for_all2 (fun ra rb -> Array.for_all2 ( = ) ra rb) slm_out rtl_out
  in
  Printf.printf "outputs %s\n" (if equal then "IDENTICAL" else "DIFFER!");

  section "3. Block-level SEC on the window datapath";
  (match
     Checker.check_slm_rtl ~slm:conv.Conv_image.slm_window
       ~rtl:conv.Conv_image.rtl_window ~spec:conv.Conv_image.window_spec ()
   with
  | Checker.Equivalent stats ->
    Printf.printf
      "window datapath EQUIVALENT for all 2^72 pixel windows (%.3fs, %d conflicts)\n"
      stats.Checker.wall_seconds stats.Checker.sat_conflicts
  | Checker.Not_equivalent _ | Checker.Unknown _ -> print_endline "unexpected!");

  section "4. The wrap bug (missing clamp) is caught instantly";
  let wrap = Conv_image.make ~clamped:false ~kernel:Conv_image.sharpen ~shift:2 () in
  (match
     Checker.check_slm_rtl ~slm:conv.Conv_image.slm_window
       ~rtl:wrap.Conv_image.rtl_window ~spec:conv.Conv_image.window_spec ()
   with
  | Checker.Not_equivalent (cex, stats) ->
    Printf.printf "NOT EQUIVALENT in %.3fs; a saturating window:\n"
      stats.Checker.wall_seconds;
    (match List.assoc "x" cex.Checker.params with
    | Dfv_hwir.Interp.Varr a ->
      Printf.printf "  window = [%s]\n"
        (String.concat "; "
           (Array.to_list
              (Array.map (fun v -> string_of_int (Dfv_bitvec.Bitvec.to_int v)) a)))
    | _ -> ())
  | Checker.Equivalent _ | Checker.Unknown _ -> print_endline "bug missed?!");

  section "5. Partitioned 3-block chain: incremental SEC localizes a bug";
  let buggy = Image_chain.make ~buggy:Image_chain.Convolution () in
  Printf.printf "monolithic SEC (brightness . conv . threshold): %s\n"
    (match
       Checker.check_slm_rtl ~slm:buggy.Image_chain.slm
         ~rtl:buggy.Image_chain.rtl_top ~spec:buggy.Image_chain.chain_spec ()
     with
    | Checker.Not_equivalent (_, stats) ->
      Printf.sprintf "NOT EQUIVALENT (%.3fs) -- but which block?"
        stats.Checker.wall_seconds
    | Checker.Equivalent _ | Checker.Unknown _ -> "equivalent?!");
  List.iter
    (fun b ->
      let verdict =
        Checker.check_slm_rtl
          ~slm:(Image_chain.block_slm buggy b)
          ~rtl:(Image_chain.block_rtl buggy b)
          ~spec:(Image_chain.block_spec b) ()
      in
      Printf.printf "  block %-12s: %s\n" (Image_chain.block_name b)
        (match verdict with
        | Checker.Equivalent stats ->
          Printf.sprintf "equivalent (%.3fs)" stats.Checker.wall_seconds
        | Checker.Not_equivalent (_, stats) ->
          Printf.sprintf "NOT EQUIVALENT (%.3fs)  <-- the bug lives here"
            stats.Checker.wall_seconds
        | Checker.Unknown _ -> "unknown?!"))
    Image_chain.all_blocks;

  section "6. Plug-and-play: swap one SLM stage for wrapped RTL";
  let chain = Image_chain.make () in
  let st = Random.State.make [| 7 |] in
  let pixels =
    Array.init 48 (fun _ -> Dfv_bitvec.Bitvec.create ~width:8 (Random.State.int st 256))
  in
  let slm_stage = Image_chain.slm_stage chain Image_chain.Brightness in
  let rtl_stage =
    Dfv_cosim.Stream.rtl_stage ~name:"brightness-rtl"
      ~rtl:chain.Image_chain.rtl_brightness ~in_port:"p" ~out_port:"q"
      ~latency:0 ()
  in
  let out_slm, _ = Dfv_cosim.Stream.run_pipeline [ slm_stage ] pixels in
  let out_rtl, _ = Dfv_cosim.Stream.run_pipeline [ rtl_stage ] pixels in
  Printf.printf "SLM stage vs wrapped-RTL stage on a %d-pixel stream: %s\n"
    (Array.length pixels)
    (if Array.for_all2 Dfv_bitvec.Bitvec.equal out_slm out_rtl then
       "IDENTICAL (partitioning enables drop-in replacement)"
     else "DIFFER");

  print_endline "\nDone."
