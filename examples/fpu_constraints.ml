(* Floating point corner cases (Section 3.1.2).

   The SLM computes in full IEEE-754; the RTL flushes denormals and has
   no NaN/infinity datapath.  First we quantify the divergence with the
   bit-exact binary32 substrate, then we reproduce the paper's remedy on
   a SEC-sized minifloat: unconstrained SEC refutes, input constraints
   restore the proof.

   Run with: dune exec examples/fpu_constraints.exe *)

open Dfv_softfloat
open Dfv_designs
open Dfv_sec

let section title = Printf.printf "\n=== %s ===\n" title

let () =
  section "1. binary32: IEEE SLM vs corner-cutting RTL profile";
  let st = Random.State.make [| 6 |] in
  let n = 100_000 in
  let diverged = ref 0 in
  let by_class = Hashtbl.create 8 in
  let classify a b =
    if F32.is_nan a || F32.is_nan b then "nan-input"
    else if F32.is_infinity a || F32.is_infinity b then "inf-input"
    else if F32.is_denormal a || F32.is_denormal b then "denormal-input"
    else "finite-normal-inputs"
  in
  let rand32 () =
    (Random.State.bits st land 0xFFFF) lor ((Random.State.bits st land 0xFFFF) lsl 16)
  in
  for _ = 1 to n do
    let a = rand32 () and b = rand32 () in
    let i = F32.add F32.ieee a b and r = F32.add F32.rtl_lite a b in
    if not (F32.equal_numeric i r) then begin
      incr diverged;
      let k = classify a b in
      Hashtbl.replace by_class k
        (1 + Option.value ~default:0 (Hashtbl.find_opt by_class k))
    end
  done;
  Printf.printf "random patterns: %d / %d additions diverge\n" !diverged n;
  Hashtbl.iter (Printf.printf "  cause %-22s: %d\n") by_class;

  section "2. Well-scaled inputs: the profiles agree bit-for-bit";
  let agree = ref true in
  for _ = 1 to 50_000 do
    let mk () =
      F32.of_parts ~sign:(Random.State.bool st)
        ~exponent:(64 + Random.State.int st 128)
        ~mantissa:(Random.State.int st 0x800000)
    in
    let a = mk () and b = mk () in
    if F32.add F32.ieee a b <> F32.add F32.rtl_lite a b then agree := false
  done;
  Printf.printf "50000 mid-range additions: %s\n"
    (if !agree then "all identical -- constraints CAN rescue equivalence"
     else "diverged?!");

  section "3. The same story, formally, on an 8-bit minifloat";
  let mf = Minifloat.make () in
  (match Checker.check_slm_slm ~a:mf.Minifloat.full ~b:mf.Minifloat.lite () with
  | Checker.Not_equivalent (cex, stats) ->
    Printf.printf "unconstrained SEC: NOT EQUIVALENT (%.3fs)\n"
      stats.Checker.wall_seconds;
    (match
       ( List.assoc "a" cex.Checker.params,
         List.assoc "b" cex.Checker.params )
     with
    | Dfv_hwir.Interp.Vint a, Dfv_hwir.Interp.Vint b ->
      let a = Dfv_bitvec.Bitvec.to_int a and b = Dfv_bitvec.Bitvec.to_int b in
      Printf.printf
        "  counterexample: 0x%02x (%g) + 0x%02x (%g)\n\
        \    full IEEE-style: 0x%02x (%g)\n\
        \    flush-to-zero  : 0x%02x (%g)\n"
        a (Minifloat.decode a) b (Minifloat.decode b)
        (Minifloat.golden_add ~flush:false a b)
        (Minifloat.decode (Minifloat.golden_add ~flush:false a b))
        (Minifloat.golden_add ~flush:true a b)
        (Minifloat.decode (Minifloat.golden_add ~flush:true a b))
    | _ -> ())
  | Checker.Equivalent _ | Checker.Unknown _ -> print_endline "unexpected!");

  section "4. Constrain the input space (the Section 3.1.2 remedy)";
  (match
     Checker.check_slm_slm ~a:mf.Minifloat.full ~b:mf.Minifloat.lite
       ~constraints:mf.Minifloat.safe_constraints ()
   with
  | Checker.Equivalent stats ->
    Printf.printf
      "with 'both exponents >= 5': EQUIVALENT, proved in %.3fs\n\
       (the RTL's shortcut is sound exactly on the inputs the designer\n\
       \ assumed -- and now that assumption is a checked artifact)\n"
      stats.Checker.wall_seconds
  | Checker.Not_equivalent _ | Checker.Unknown _ ->
    print_endline "constraint too weak?!")
