(* Tests for the HWIR: typechecking, interpretation, guideline lint, and
   interpreter-vs-static-elaboration agreement. *)

open Dfv_bitvec
open Dfv_hwir
open Dfv_aig

let check_int = Alcotest.check Alcotest.int
let check_bool = Alcotest.check Alcotest.bool

(* --- sample programs ---------------------------------------------------- *)

(* Euclid's gcd, in conditioned form: bounded loop with conditional exit
   (8-bit gcd needs at most 13 iterations; 16 is a safe static bound). *)
let gcd_prog =
  let open Ast in
  {
    funcs =
      [ {
          fname = "gcd";
          params = [ ("a", uint 8); ("b", uint 8) ];
          ret = uint 8;
          locals = [ ("x", uint 8); ("y", uint 8); ("t", uint 8) ];
          body =
            [ assign "x" (var "a");
              assign "y" (var "b");
              Bounded_while
                {
                  cond = var "y" <>^ u 8 0;
                  max_iter = 16;
                  body =
                    [ assign "t" (var "y");
                      assign "y" (var "x" %^ var "y");
                      assign "x" (var "t") ];
                };
              ret (var "x") ];
        } ];
    entry = "gcd";
  }

(* The same algorithm in unconditioned form: data-dependent while. *)
let gcd_unconditioned =
  let open Ast in
  {
    gcd_prog with
    funcs =
      [ {
          (List.hd gcd_prog.funcs) with
          body =
            [ assign "x" (var "a");
              assign "y" (var "b");
              While
                ( var "y" <>^ u 8 0,
                  [ assign "t" (var "y");
                    assign "y" (var "x" %^ var "y");
                    assign "x" (var "t") ] );
              ret (var "x") ];
        } ];
  }

(* A 4-tap FIR with widening arithmetic and a helper function. *)
let fir_prog =
  let open Ast in
  let mac = Call ("mac", [ var "acc"; idx "x" (var "i"); idx "h" (var "i") ]) in
  {
    funcs =
      [ {
          fname = "mac";
          params = [ ("acc", uint 20); ("xi", uint 8); ("hi", uint 8) ];
          ret = uint 20;
          locals = [];
          body =
            [ ret
                (var "acc"
                +^ cast (uint 20) (cast (uint 16) (var "xi") *^ cast (uint 16) (var "hi")))
            ];
        };
        {
          fname = "fir4";
          params = [ ("x", Tarray (uint 8, 4)); ("h", Tarray (uint 8, 4)) ];
          ret = uint 20;
          locals = [ ("acc", uint 20) ];
          body =
            [ For
                {
                  ivar = "i32";
                  count = 4;
                  body =
                    [ assign "i" (cast (uint 2) (var "i32")); assign "acc" mac ];
                };
              ret (var "acc") ];
        } ];
    entry = "fir4";
  }

(* fir_prog needs local "i" of width 2 for indexing. *)
let fir_prog =
  let open Ast in
  {
    fir_prog with
    funcs =
      List.map
        (fun f ->
          if f.fname = "fir4" then
            { f with locals = ("i", uint 2) :: f.locals }
          else f)
        fir_prog.funcs;
  }

(* Early return: absolute value of a signed byte. *)
let abs_prog =
  let open Ast in
  {
    funcs =
      [ {
          fname = "abs8";
          params = [ ("v", sint 8) ];
          ret = sint 8;
          locals = [];
          body =
            [ If (var "v" <^ s 8 0, [ ret (Unop (Neg, var "v")) ], []);
              ret (var "v") ];
        } ];
    entry = "abs8";
  }

(* Array reversal returning the array, with symbolic-index stores. *)
let reverse_prog =
  let open Ast in
  {
    funcs =
      [ {
          fname = "reverse";
          params = [ ("x", Tarray (uint 8, 8)) ];
          ret = Tarray (uint 8, 8);
          locals = [ ("y", Tarray (uint 8, 8)); ("j", uint 3) ];
          body =
            [ For
                {
                  ivar = "i";
                  count = 8;
                  body =
                    [ assign "j" (cast (uint 3) (u 32 7 -^ var "i"));
                      assign_idx "y" (var "j")
                        (idx "x" (cast (uint 3) (var "i"))) ];
                };
              ret (var "y") ];
        } ];
    entry = "reverse";
  }

(* Bit-manipulation soup: selects, shifts, conditionals, logic. *)
let bits_prog =
  let open Ast in
  {
    funcs =
      [ {
          fname = "bits";
          params = [ ("a", uint 16); ("b", uint 16) ];
          ret = uint 16;
          locals = [ ("t", uint 16) ];
          body =
            [ assign "t"
                (Cond
                   ( Bitsel (var "a", 15, 15) ==^ u 1 1,
                     var "a" ^^ var "b",
                     var "a" +^ (var "b" >>^ cast (uint 4) (Bitsel (var "a", 3, 0)))
                   ));
              ret
                (var "t"
                |^ cast (uint 16) (Bitsel (var "b", 11, 4)) <<^ u 4 8) ];
        } ];
    entry = "bits";
  }

(* --- typecheck ----------------------------------------------------------- *)

let test_typecheck_ok () =
  List.iter Typecheck.check
    [ gcd_prog; gcd_unconditioned; fir_prog; abs_prog; reverse_prog; bits_prog ]

let test_typecheck_errors () =
  let open Ast in
  let expect_error name p =
    match Typecheck.check p with
    | exception Typecheck.Type_error _ -> ()
    | () -> Alcotest.failf "%s: expected type error" name
  in
  let fn body = { fname = "f"; params = [ ("a", uint 8) ]; ret = uint 8; locals = []; body } in
  expect_error "width mismatch"
    { funcs = [ fn [ ret (var "a" +^ u 4 1) ] ]; entry = "f" };
  expect_error "sign mismatch"
    { funcs = [ fn [ ret (var "a" +^ s 8 1) ] ]; entry = "f" };
  expect_error "unknown var" { funcs = [ fn [ ret (var "zz") ] ]; entry = "f" };
  expect_error "missing return" { funcs = [ fn [ assign "a" (u 8 0) ] ]; entry = "f" };
  expect_error "missing entry" { funcs = [ fn [ ret (var "a") ] ]; entry = "main" };
  expect_error "non-bool if"
    { funcs = [ fn [ If (var "a", [ ret (var "a") ], [ ret (var "a") ]) ] ]; entry = "f" };
  expect_error "constant index oob"
    {
      funcs =
        [ {
            fname = "f";
            params = [ ("x", Tarray (uint 8, 4)) ];
            ret = uint 8;
            locals = [];
            body = [ ret (idx "x" (u 3 5)) ];
          } ];
      entry = "f";
    };
  expect_error "signed index"
    {
      funcs =
        [ {
            fname = "f";
            params = [ ("x", Tarray (uint 8, 4)); ("i", sint 2) ];
            ret = uint 8;
            locals = [];
            body = [ ret (idx "x" (var "i")) ];
          } ];
      entry = "f";
    };
  expect_error "recursion"
    {
      funcs = [ fn [ ret (Call ("f", [ var "a" ])) ] ];
      entry = "f";
    }

(* --- interpreter ----------------------------------------------------------- *)

let test_interp_gcd () =
  let g a b =
    Bitvec.to_int
      (Interp.as_int
         (Interp.run gcd_prog [ Interp.vint ~width:8 a; Interp.vint ~width:8 b ]))
  in
  check_int "gcd(12,18)" 6 (g 12 18);
  check_int "gcd(7,13)" 1 (g 7 13);
  check_int "gcd(0,5)" 5 (g 0 5);
  check_int "gcd(5,0)" 5 (g 5 0);
  check_int "gcd(240,96)" 48 (g 240 96)

let test_interp_matches_unconditioned () =
  (* The conditioned and unconditioned gcd models agree on all inputs —
     conditioning is a refactoring, not a behaviour change. *)
  for a = 0 to 40 do
    for b = 0 to 40 do
      let run p =
        Bitvec.to_int
          (Interp.as_int
             (Interp.run p [ Interp.vint ~width:8 a; Interp.vint ~width:8 b ]))
      in
      if run gcd_prog <> run gcd_unconditioned then
        Alcotest.failf "divergence at gcd(%d, %d)" a b
    done
  done

let test_interp_fir () =
  let x = Interp.varr ~width:8 [| 1; 2; 3; 4 |] in
  let h = Interp.varr ~width:8 [| 10; 20; 30; 40 |] in
  let r = Bitvec.to_int (Interp.as_int (Interp.run fir_prog [ x; h ])) in
  check_int "dot product" ((1 * 10) + (2 * 20) + (3 * 30) + (4 * 40)) r

let test_interp_abs () =
  let a v =
    Bitvec.to_signed_int
      (Interp.as_int (Interp.run abs_prog [ Interp.vint ~width:8 v ]))
  in
  check_int "abs(-5)" 5 (a (-5));
  check_int "abs(5)" 5 (a 5);
  check_int "abs(0)" 0 (a 0);
  (* Two's complement edge: abs(-128) = -128 at 8 bits. *)
  check_int "abs(-128)" (-128) (a (-128))

let test_interp_reverse () =
  let x = Interp.varr ~width:8 [| 1; 2; 3; 4; 5; 6; 7; 8 |] in
  let r = Interp.as_arr (Interp.run reverse_prog [ x ]) in
  check_int "first" 8 (Bitvec.to_int r.(0));
  check_int "last" 1 (Bitvec.to_int r.(7))

let test_interp_runtime_errors () =
  let open Ast in
  let expect_rt name p args =
    match Interp.run p args with
    | exception Interp.Runtime_error _ -> ()
    | _ -> Alcotest.failf "%s: expected runtime error" name
  in
  let div_prog =
    {
      funcs =
        [ {
            fname = "f";
            params = [ ("a", uint 8); ("b", uint 8) ];
            ret = uint 8;
            locals = [];
            body = [ ret (var "a" /^ var "b") ];
          } ];
      entry = "f";
    }
  in
  expect_rt "div by zero" div_prog
    [ Interp.vint ~width:8 1; Interp.vint ~width:8 0 ];
  let oob_prog =
    {
      funcs =
        [ {
            fname = "f";
            params = [ ("x", Tarray (uint 8, 4)); ("i", uint 8) ];
            ret = uint 8;
            locals = [];
            body = [ ret (idx "x" (var "i")) ];
          } ];
      entry = "f";
    }
  in
  expect_rt "index oob" oob_prog
    [ Interp.varr ~width:8 [| 1; 2; 3; 4 |]; Interp.vint ~width:8 9 ]

let test_interp_extern () =
  let open Ast in
  let p =
    {
      funcs =
        [ {
            fname = "f";
            params = [ ("a", uint 8) ];
            ret = uint 8;
            locals = [];
            body = [ Extern_call ("printf", [ var "a" ]); ret (var "a") ];
          } ];
      entry = "f";
    }
  in
  (* Default extern handler refuses. *)
  check_bool "unhandled extern raises" true
    (match Interp.run p [ Interp.vint ~width:8 3 ] with
    | exception Interp.Runtime_error _ -> true
    | _ -> false);
  (* A supplied handler makes the unconditioned model runnable. *)
  let seen = ref 0 in
  let extern _ args = seen := Bitvec.to_int (Interp.as_int (List.hd args)) in
  let r = Interp.run ~extern p [ Interp.vint ~width:8 3 ] in
  check_int "value returned" 3 (Bitvec.to_int (Interp.as_int r));
  check_int "extern saw arg" 3 !seen

(* --- guideline lint --------------------------------------------------------- *)

let test_guideline_conditioned () =
  check_bool "gcd conditioned" true (Guideline.conditioned gcd_prog);
  check_bool "fir conditioned" true (Guideline.conditioned fir_prog);
  check_bool "unconditioned gcd flagged" false
    (Guideline.conditioned gcd_unconditioned);
  match Guideline.check gcd_unconditioned with
  | [ Guideline.Data_dependent_loop { func = "gcd" } ] -> ()
  | vs ->
    Alcotest.failf "expected one data-dependent-loop violation, got %d"
      (List.length vs)

let test_guideline_all_violations () =
  let open Ast in
  let p =
    {
      funcs =
        [ {
            fname = "bad";
            params = [ ("n", uint 8) ];
            ret = uint 8;
            locals = [ ("x", Tarray (uint 8, 4)) ];
            body =
              [ Alloc { var = "buf"; elem = uint 8; size = var "n" };
                Alias { var = "p"; target = "x" };
                While (var "n" <>^ u 8 0, [ assign "n" (var "n" -^ u 8 1) ]);
                Extern_call ("memcpy", []);
                ret (var "n") ];
          };
          {
            fname = "dead";
            params = [];
            ret = uint 8;
            locals = [];
            body = [ ret (u 8 0) ];
          } ];
      entry = "bad";
    }
  in
  let vs = Guideline.check p in
  let count pred = List.length (List.filter pred vs) in
  check_int "alloc" 1
    (count (function Guideline.Dynamic_allocation _ -> true | _ -> false));
  check_int "alias" 1
    (count (function Guideline.Pointer_aliasing _ -> true | _ -> false));
  check_int "while" 1
    (count (function Guideline.Data_dependent_loop _ -> true | _ -> false));
  check_int "extern" 1
    (count (function Guideline.External_call _ -> true | _ -> false));
  check_int "dead code" 1
    (count (function Guideline.Unreachable_function _ -> true | _ -> false));
  check_bool "advisory does not block" true
    (Guideline.is_advisory (Guideline.Unreachable_function { func = "dead" }))

(* --- elaboration ------------------------------------------------------------- *)

(* Flatten argument values into an AIG primary-input assignment, in the
   allocation order used by Elab.elaborate. *)
let flatten_inputs params (args : Interp.value list) =
  let bits =
    List.concat
      (List.map2
         (fun (_, shape) v ->
           match (shape, v) with
           | Elab.Word _, Interp.Vint bv -> [ Bitvec.to_bits bv ]
           | Elab.Bank _, Interp.Varr a ->
             Array.to_list (Array.map Bitvec.to_bits a)
           | _ -> Alcotest.fail "shape mismatch")
         params args)
  in
  Array.concat bits

let check_elab_matches_interp ~name ?(iters = 100) prog gen_args =
  Typecheck.check prog;
  let g = Aig.create () in
  let params, result = Elab.elaborate prog ~g in
  let st = Random.State.make [| Hashtbl.hash name |] in
  for _ = 1 to iters do
    let args = gen_args st in
    let inputs = flatten_inputs params args in
    let values = Aig.simulate g inputs in
    let expected = Interp.run prog args in
    match (result, expected) with
    | Elab.Word w, Interp.Vint bv ->
      let got = Word.to_bitvec g values w in
      if not (Bitvec.equal got bv) then
        Alcotest.failf "%s: elaborated %s, interpreted %s" name
          (Bitvec.to_string got) (Bitvec.to_string bv)
    | Elab.Bank bank, Interp.Varr arr ->
      Array.iteri
        (fun i w ->
          let got = Word.to_bitvec g values w in
          if not (Bitvec.equal got arr.(i)) then
            Alcotest.failf "%s[%d]: elaborated %s, interpreted %s" name i
              (Bitvec.to_string got) (Bitvec.to_string arr.(i)))
        bank
    | _ -> Alcotest.fail "result shape mismatch"
  done

let test_elab_gcd () =
  check_elab_matches_interp ~name:"gcd" gcd_prog (fun st ->
      [ Interp.Vint (Bitvec.random st ~width:8);
        Interp.Vint (Bitvec.random st ~width:8) ])

let test_elab_fir () =
  check_elab_matches_interp ~name:"fir" fir_prog (fun st ->
      [ Interp.Varr (Array.init 4 (fun _ -> Bitvec.random st ~width:8));
        Interp.Varr (Array.init 4 (fun _ -> Bitvec.random st ~width:8)) ])

let test_elab_abs () =
  check_elab_matches_interp ~name:"abs" abs_prog (fun st ->
      [ Interp.Vint (Bitvec.random st ~width:8) ])

let test_elab_reverse () =
  check_elab_matches_interp ~name:"reverse" reverse_prog (fun st ->
      [ Interp.Varr (Array.init 8 (fun _ -> Bitvec.random st ~width:8)) ])

let test_elab_bits () =
  check_elab_matches_interp ~name:"bits" bits_prog (fun st ->
      [ Interp.Vint (Bitvec.random st ~width:16);
        Interp.Vint (Bitvec.random st ~width:16) ])

let test_elab_rejects_unconditioned () =
  let expect_reject name p =
    let g = Aig.create () in
    match Elab.elaborate p ~g with
    | exception Elab.Not_synthesizable _ -> ()
    | _ -> Alcotest.failf "%s: expected Not_synthesizable" name
  in
  expect_reject "while" gcd_unconditioned;
  let open Ast in
  expect_reject "alloc"
    {
      funcs =
        [ {
            fname = "f";
            params = [ ("n", uint 8) ];
            ret = uint 8;
            locals = [];
            body =
              [ Alloc { var = "b"; elem = uint 8; size = var "n" };
                ret (var "n") ];
          } ];
      entry = "f";
    };
  expect_reject "extern"
    {
      funcs =
        [ {
            fname = "f";
            params = [ ("n", uint 8) ];
            ret = uint 8;
            locals = [];
            body = [ Extern_call ("x", []); ret (var "n") ];
          } ];
      entry = "f";
    }

(* SAT-level check: the elaborated gcd is commutative, proven by
   building a miter program over shared inputs and refuting its
   negation.  4-bit width: the 8-bit instance (32 unrolled dividers) is
   beyond a classic CDCL solver's comfortable range, and the qualitative
   point is identical. *)
let gcd4_prog =
  let open Ast in
  {
    funcs =
      [ {
          fname = "gcd";
          params = [ ("a", uint 4); ("b", uint 4) ];
          ret = uint 4;
          locals = [ ("x", uint 4); ("y", uint 4); ("t", uint 4) ];
          body =
            [ assign "x" (var "a");
              assign "y" (var "b");
              Bounded_while
                {
                  cond = var "y" <>^ u 4 0;
                  max_iter = 8;
                  body =
                    [ assign "t" (var "y");
                      assign "y" (var "x" %^ var "y");
                      assign "x" (var "t") ];
                };
              ret (var "x") ];
        } ];
    entry = "gcd";
  }

let test_elab_gcd_commutative_by_sat () =
  let g = Aig.create () in
  let open Ast in
  let miter_prog =
    {
      funcs =
        gcd4_prog.funcs
        @ [ {
              fname = "miter";
              params = [ ("a", uint 4); ("b", uint 4) ];
              ret = uint 1;
              locals = [];
              body =
                [ ret
                    (Call ("gcd", [ var "a"; var "b" ])
                    ==^ Call ("gcd", [ var "b"; var "a" ])) ];
            } ];
      entry = "miter";
    }
  in
  let _, result = Elab.elaborate miter_prog ~g in
  let w = match result with Elab.Word w -> w | _ -> assert false in
  match Aig.check_sat g (Aig.not_ w.(0)) with
  | `Unsat -> ()
  | `Sat witness ->
    Alcotest.failf "gcd not commutative?! witness %s"
      (String.concat ""
         (Array.to_list (Array.map (fun b -> if b then "1" else "0") witness)))

let suite =
  [ Alcotest.test_case "typecheck ok" `Quick test_typecheck_ok;
    Alcotest.test_case "typecheck errors" `Quick test_typecheck_errors;
    Alcotest.test_case "interp gcd" `Quick test_interp_gcd;
    Alcotest.test_case "conditioned = unconditioned" `Quick
      test_interp_matches_unconditioned;
    Alcotest.test_case "interp fir" `Quick test_interp_fir;
    Alcotest.test_case "interp abs (early return)" `Quick test_interp_abs;
    Alcotest.test_case "interp reverse (arrays)" `Quick test_interp_reverse;
    Alcotest.test_case "interp runtime errors" `Quick
      test_interp_runtime_errors;
    Alcotest.test_case "interp extern handler" `Quick test_interp_extern;
    Alcotest.test_case "guideline: conditioned programs" `Quick
      test_guideline_conditioned;
    Alcotest.test_case "guideline: all violation kinds" `Quick
      test_guideline_all_violations;
    Alcotest.test_case "elab = interp: gcd" `Quick test_elab_gcd;
    Alcotest.test_case "elab = interp: fir" `Quick test_elab_fir;
    Alcotest.test_case "elab = interp: abs" `Quick test_elab_abs;
    Alcotest.test_case "elab = interp: reverse" `Quick test_elab_reverse;
    Alcotest.test_case "elab = interp: bit soup" `Quick test_elab_bits;
    Alcotest.test_case "elab rejects unconditioned" `Quick
      test_elab_rejects_unconditioned;
    Alcotest.test_case "SAT: gcd commutative" `Quick
      test_elab_gcd_commutative_by_sat ]

(* Bounded loops that hit their static bound behave identically in the
   interpreter and the elaborated hardware: both simply stop iterating
   (the conditioned-loop contract). *)
let test_bounded_loop_exhaustion_consistent () =
  let open Ast in
  (* Counts down from `a` by 1, but only 3 iterations are provisioned:
     for a > 3 the loop exits early with a - 3. *)
  let prog =
    {
      funcs =
        [ {
            fname = "f";
            params = [ ("a", uint 8) ];
            ret = uint 8;
            locals = [];
            body =
              [ Bounded_while
                  {
                    cond = var "a" <>^ u 8 0;
                    max_iter = 3;
                    body = [ assign "a" (var "a" -^ u 8 1) ];
                  };
                ret (var "a") ];
          } ];
      entry = "f";
    }
  in
  Typecheck.check prog;
  let g = Aig.create () in
  let params, result = Elab.elaborate prog ~g in
  let w = match result with Elab.Word w -> w | _ -> assert false in
  ignore params;
  for a = 0 to 255 do
    let interp =
      Bitvec.to_int
        (Interp.as_int (Interp.run prog [ Interp.vint ~width:8 a ]))
    in
    let values = Aig.simulate g (Bitvec.to_bits (Bitvec.create ~width:8 a)) in
    let elab = Bitvec.to_int (Word.to_bitvec g values w) in
    let expected = max 0 (a - 3) in
    if interp <> expected || elab <> expected then
      Alcotest.failf "a=%d: interp=%d elab=%d expected=%d" a interp elab
        expected
  done

(* Early return from inside an unrolled loop masks later iterations the
   same way in both semantics. *)
let test_early_return_in_loop_consistent () =
  let open Ast in
  (* Returns the index of the first set bit of `a`, or 8. *)
  let prog =
    {
      funcs =
        [ {
            fname = "f";
            params = [ ("a", uint 8) ];
            ret = uint 8;
            locals = [];
            body =
              [ For
                  {
                    ivar = "i";
                    count = 8;
                    body =
                      [ If
                          ( (var "a" >>^ cast (uint 3) (var "i")) &^ u 8 1
                            ==^ u 8 1,
                            [ ret (cast (uint 8) (var "i")) ],
                            [] ) ];
                  };
                ret (u 8 8) ];
          } ];
      entry = "f";
    }
  in
  Typecheck.check prog;
  let g = Aig.create () in
  let _, result = Elab.elaborate prog ~g in
  let w = match result with Elab.Word w -> w | _ -> assert false in
  for a = 0 to 255 do
    let expected =
      let rec go i = if i = 8 then 8 else if (a lsr i) land 1 = 1 then i else go (i + 1) in
      go 0
    in
    let interp =
      Bitvec.to_int (Interp.as_int (Interp.run prog [ Interp.vint ~width:8 a ]))
    in
    let values = Aig.simulate g (Bitvec.to_bits (Bitvec.create ~width:8 a)) in
    let elab = Bitvec.to_int (Word.to_bitvec g values w) in
    if interp <> expected || elab <> expected then
      Alcotest.failf "a=%02x: interp=%d elab=%d expected=%d" a interp elab
        expected
  done

let suite =
  suite
  @ [ Alcotest.test_case "bounded loop exhaustion consistent" `Quick
        test_bounded_loop_exhaustion_consistent;
      Alcotest.test_case "early return in loop consistent" `Quick
        test_early_return_in_loop_consistent ]
