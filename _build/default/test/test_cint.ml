(* Tests for Cint: C/C++ integer semantics (the int-based SLM substrate). *)

open Dfv_bitvec

let ci = Alcotest.testable Cint.pp Cint.equal
let check_ci = Alcotest.check ci
let check_int = Alcotest.check Alcotest.int
let check_bool = Alcotest.check Alcotest.bool

let i8 = Cint.make Cint.I8
let u8 = Cint.make Cint.U8
let i16 = Cint.make Cint.I16
let u16 = Cint.make Cint.U16
let i32 = Cint.make Cint.I32
let u32 = Cint.make Cint.U32
let i64 = Cint.make Cint.I64
let u64 = Cint.make Cint.U64

let test_make_normalizes () =
  check_int "u8 wraps" 44 (Cint.value (u8 300));
  check_int "i8 wraps" (-128) (Cint.value (i8 128));
  check_int "u16" 65535 (Cint.value (u16 (-1)));
  check_int "i32 id" (-5) (Cint.value (i32 (-5)));
  check_int "u32 wrap" 0xFFFFFFFF (Cint.value (u32 (-1)))

let test_promotion () =
  (* char + char computes in int: no 8-bit wrap (Fig 1 masked in C). *)
  let r = Cint.add (i8 100) (i8 100) in
  check_bool "result is int" true (Cint.ctype r = Cint.I32);
  check_int "no wrap at 8 bits" 200 (Cint.value r);
  (* unsigned char also promotes to *signed* int. *)
  let r2 = Cint.add (u8 200) (u8 200) in
  check_bool "uchar promotes to int" true (Cint.ctype r2 = Cint.I32);
  check_int "value" 400 (Cint.value r2)

let test_usual_conversions () =
  (* int + unsigned -> unsigned *)
  let a, b = Cint.usual_conversions (i32 (-1)) (u32 1) in
  check_bool "common type u32" true (Cint.ctype a = Cint.U32 && Cint.ctype b = Cint.U32);
  (* u32 + i64 -> i64 (signed of greater rank represents all u32) *)
  let a, _ = Cint.usual_conversions (u32 5) (i64 5) in
  check_bool "u32+i64 -> i64" true (Cint.ctype a = Cint.I64);
  (* u64 + i64 -> u64 *)
  let a, _ = Cint.usual_conversions (u64 5) (i64 5) in
  check_bool "u64+i64 -> u64" true (Cint.ctype a = Cint.U64);
  (* i16 + u16 both promote to int -> int *)
  let a, _ = Cint.usual_conversions (i16 5) (u16 5) in
  check_bool "i16+u16 -> i32" true (Cint.ctype a = Cint.I32)

let test_signed_unsigned_pitfall () =
  (* The classic: -1 < 1u is FALSE in C. *)
  check_bool "-1 < 1u is false" false (Cint.lt (i32 (-1)) (u32 1));
  check_bool "-1 > 1u is true" true (Cint.gt (i32 (-1)) (u32 1));
  (* But at rank 64 with signed winner it behaves mathematically. *)
  check_bool "-1 < u32 1 as i64" true (Cint.lt (i64 (-1)) (u32 1))

let test_arith () =
  check_ci "add" (i32 7) (Cint.add (i32 3) (i32 4));
  check_ci "sub" (i32 (-1)) (Cint.sub (i32 3) (i32 4));
  check_ci "mul" (i32 12) (Cint.mul (i32 3) (i32 4));
  check_ci "div trunc" (i32 (-3)) (Cint.div (i32 (-7)) (i32 2));
  check_ci "rem sign" (i32 (-1)) (Cint.rem (i32 (-7)) (i32 2));
  check_ci "neg" (i32 (-3)) (Cint.neg (i32 3));
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (Cint.div (i32 1) (i32 0)))

let test_unsigned_div () =
  (* 0xFFFFFFFF / 2 as unsigned. *)
  check_int "u32 div" 0x7FFFFFFF (Cint.value (Cint.div (u32 (-1)) (u32 2)));
  check_int "u32 rem" 1 (Cint.value (Cint.rem (u32 (-1)) (u32 2)))

let test_wrap_at_32 () =
  (* int overflow wraps (and is recorded). *)
  Cint.reset_overflow_count ();
  let r = Cint.add (i32 0x7FFFFFFF) (i32 1) in
  check_int "wraps to min" (-0x80000000) (Cint.value r);
  check_bool "overflow recorded" true (Cint.overflow_occurred ());
  Cint.reset_overflow_count ();
  let _ = Cint.add (i32 1) (i32 1) in
  check_bool "no spurious overflow" false (Cint.overflow_occurred ())

let test_overflow_masking_vs_bitvec () =
  (* Fig 1 in C: (64+64)+(-1) at type int gives 127 in both association
     orders; the 8-bit RTL diverges.  The C model masks the overflow. *)
  Cint.reset_overflow_count ();
  let o1 = Cint.add (Cint.add (i8 64) (i8 64)) (i8 (-1)) in
  let o2 = Cint.add (Cint.add (i8 64) (i8 (-1))) (i8 64) in
  check_bool "C model associative" true (Cint.eq o1 o2);
  check_int "C result" 127 (Cint.value o1);
  check_bool "and no overflow is even recorded" false (Cint.overflow_occurred ())

let test_shifts () =
  check_int "shl" 8 (Cint.value (Cint.shift_left (i32 1) 3));
  check_int "shr signed" (-4) (Cint.value (Cint.shift_right (i32 (-8)) 1));
  check_int "shr unsigned" 0x7FFFFFFF
    (Cint.value (Cint.shift_right (u32 (-1)) 1));
  (* shift promotes: u8 << 4 computes at int width. *)
  check_int "u8 shl no wrap" 0xFF0 (Cint.value (Cint.shift_left (u8 0xFF) 4));
  Alcotest.check_raises "shift oob"
    (Invalid_argument "Cint.shift_left: shift amount out of range") (fun () ->
      ignore (Cint.shift_left (i32 1) 32))

let test_logic () =
  (* The paper's mask-and-shift idiom for selecting bits [23:16]. *)
  let x = i32 0x00ab0000 in
  let sel = Cint.shift_right (Cint.logand x (i32 0x00ff0000)) 16 in
  check_int "mask+shift select" 0xab (Cint.value sel);
  check_int "or" 0xff (Cint.value (Cint.logor (i32 0xf0) (i32 0x0f)));
  check_int "xor" 0x33 (Cint.value (Cint.logxor (i32 0x3c) (i32 0x0f)));
  check_int "not" (-1) (Cint.value (Cint.lognot (i32 0)))

let test_cast () =
  check_int "i32 -> u8" 44 (Cint.value (Cint.cast Cint.U8 (i32 300)));
  check_int "u8 -> i8" (-1) (Cint.value (Cint.cast Cint.I8 (u8 255)));
  check_int "i64 -> i32 wrap" 0
    (Cint.value (Cint.cast Cint.I32 (Cint.shift_left (i64 1) 32)))

let test_bitvec_bridge () =
  let x = i32 (-5) in
  let bv = Cint.to_bitvec x in
  check_int "width" 32 (Bitvec.width bv);
  check_int "signed value" (-5) (Bitvec.to_signed_int bv);
  check_ci "roundtrip i32" x (Cint.of_bitvec Cint.I32 bv);
  let y = i64 (-123456789) in
  check_ci "roundtrip i64" y (Cint.of_bitvec Cint.I64 (Cint.to_bitvec y));
  let z = u8 200 in
  check_ci "roundtrip u8" z (Cint.of_bitvec Cint.U8 (Cint.to_bitvec z))

let test_u64 () =
  let x = u64 (-1) in
  check_bool "u64 max not in int" true
    (match Cint.value x with exception Failure _ -> true | _ -> false);
  check_bool "u64 bits" true (Int64.equal (Cint.value_i64 x) (-1L));
  check_int "u64 via bitvec popcount" 64 (Bitvec.popcount (Cint.to_bitvec x))

(* --- properties ------------------------------------------------------ *)

let prop_add_matches_bitvec =
  (* On u32 operands, C addition and 32-bit bit-vector addition agree. *)
  QCheck.Test.make ~name:"u32 add = bitvec add" ~count:1000
    QCheck.(pair int int)
    (fun (x, y) ->
      let c = Cint.add (Cint.make Cint.U32 x) (Cint.make Cint.U32 y) in
      let b =
        Bitvec.add (Bitvec.create ~width:32 x) (Bitvec.create ~width:32 y)
      in
      Bitvec.equal (Cint.to_bitvec c) b)

let prop_mul_matches_bitvec =
  QCheck.Test.make ~name:"u32 mul = bitvec mul" ~count:1000
    QCheck.(pair int int)
    (fun (x, y) ->
      let c = Cint.mul (Cint.make Cint.U32 x) (Cint.make Cint.U32 y) in
      let b =
        Bitvec.mul (Bitvec.create ~width:32 x) (Bitvec.create ~width:32 y)
      in
      Bitvec.equal (Cint.to_bitvec c) b)

let prop_cast_roundtrip =
  QCheck.Test.make ~name:"bitvec bridge roundtrip" ~count:500 QCheck.int
    (fun x ->
      let v = Cint.make Cint.I16 x in
      Cint.equal v (Cint.of_bitvec Cint.I16 (Cint.to_bitvec v)))

let qcheck_props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_add_matches_bitvec; prop_mul_matches_bitvec; prop_cast_roundtrip ]

let suite =
  [ Alcotest.test_case "make normalizes" `Quick test_make_normalizes;
    Alcotest.test_case "integer promotion" `Quick test_promotion;
    Alcotest.test_case "usual conversions" `Quick test_usual_conversions;
    Alcotest.test_case "signed/unsigned pitfall" `Quick
      test_signed_unsigned_pitfall;
    Alcotest.test_case "arithmetic" `Quick test_arith;
    Alcotest.test_case "unsigned division" `Quick test_unsigned_div;
    Alcotest.test_case "wrap at 32" `Quick test_wrap_at_32;
    Alcotest.test_case "Fig.1 masked in C" `Quick
      test_overflow_masking_vs_bitvec;
    Alcotest.test_case "shifts" `Quick test_shifts;
    Alcotest.test_case "logic / mask+shift" `Quick test_logic;
    Alcotest.test_case "casts" `Quick test_cast;
    Alcotest.test_case "bitvec bridge" `Quick test_bitvec_bridge;
    Alcotest.test_case "u64" `Quick test_u64 ]
  @ qcheck_props
