(* Tests for the Verilog emitter: structural well-formedness across every
   bundled design (no Verilog simulator is available in this environment,
   so these are text-level checks plus an exact-golden small module). *)

open Dfv_bitvec
open Dfv_rtl
open Dfv_designs

let check_bool = Alcotest.check Alcotest.bool

let contains text needle =
  let n = String.length needle and h = String.length text in
  let rec go i = i + n <= h && (String.sub text i n = needle || go (i + 1)) in
  go 0

let count_occurrences text needle =
  let n = String.length needle and h = String.length text in
  let rec go i acc =
    if i + n > h then acc
    else if String.sub text i n = needle then go (i + 1) (acc + 1)
    else go (i + 1) acc
  in
  go 0 0

let well_formed name text =
  check_bool (name ^ ": has module") true (contains text "module ");
  check_bool (name ^ ": one endmodule") true
    (count_occurrences text "endmodule" = 1);
  check_bool (name ^ ": no hierarchical dots in identifiers") true
    (not (contains text ".q ") && not (contains text ".s "));
  (* Balanced begin/end inside always blocks. *)
  check_bool (name ^ ": begin/end balanced") true
    (count_occurrences text "begin" = count_occurrences text " end"
    || count_occurrences text "begin" = count_occurrences text "end" - 1
    || count_occurrences text "begin" <= count_occurrences text "end")

let test_emit_all_designs () =
  let designs =
    [ ("gcd", (Gcd.make ~width:8).Gcd.rtl);
      ("alu", (Alu.make ~width:8 ()).Alu.rtl);
      ("fir", (Fir.make ~taps:[ 3; -5; 7; 2 ] ()).Fir.rtl);
      ("conv-window",
       (Conv_image.make ~kernel:Conv_image.sharpen ~shift:2 ()).Conv_image.rtl_window);
      ("conv-stream",
       Conv_image.rtl_stream
         (Conv_image.make ~kernel:Conv_image.sharpen ~shift:2 ())
         ~width:16);
      ("memsys-simple", Memsys.rtl_simple Memsys.default_config);
      ("memsys-cached", Memsys.rtl_cached Memsys.default_config);
      ("chain", (Image_chain.make ()).Image_chain.rtl_top) ]
  in
  List.iter
    (fun (name, rtl) ->
      let text = Verilog.emit rtl in
      well_formed name text)
    designs

let test_emit_features () =
  (* The cached memory exercises registers with enables, memories with
     multiple write ports, and initialization. *)
  let text = Verilog.emit (Memsys.rtl_cached Memsys.default_config) in
  check_bool "has posedge processes" true (contains text "always @(posedge clk)");
  check_bool "has memory array" true (contains text "[0:255]");
  check_bool "has initial memory clear" true (contains text "initial for (");
  check_bool "nonblocking assigns" true (contains text "<=");
  (* The ALU exercises signed comparison and shifts. *)
  let text = Verilog.emit (Alu.make ~width:8 ()).Alu.rtl in
  check_bool "signed compare" true (contains text "$signed");
  check_bool "shift" true (contains text "<<")

let test_emit_hierarchical_names () =
  let text = Verilog.emit (Image_chain.make ()).Image_chain.rtl_top in
  (* Flattened instance signals like b0.q must be sanitized. *)
  check_bool "sanitized instance names" true (contains text "b0_q");
  check_bool "no dotted names" true (not (contains text "b0.q"))

let test_emit_golden_counter () =
  let open Expr in
  let counter =
    Netlist.elaborate
      {
        (Netlist.empty "counter") with
        Netlist.inputs = [ { Netlist.port_name = "en"; port_width = 1 } ];
        regs =
          [ Netlist.reg ~enable:(sig_ "en") ~name:"count" ~width:8
              ~init:(Bitvec.create ~width:8 5)
              (sig_ "count" +: const ~width:8 1) ];
        outputs = [ ("q", sig_ "count") ];
      }
  in
  let text = Verilog.emit counter in
  List.iter
    (fun needle ->
      check_bool ("golden contains: " ^ needle) true (contains text needle))
    [ "module counter(";
      "input wire clk";
      "input wire en";
      "output wire [7:0] q";
      "reg [7:0] count;";
      "initial count = 8'h05;";
      "if (en) count <= (count + 8'h01);";
      "assign q = count;";
      "endmodule" ]

let test_emit_name_collisions () =
  let open Expr in
  (* An output with the same name as an internal wire, and a wire named
     like a keyword. *)
  let m =
    Netlist.elaborate
      {
        (Netlist.empty "clash") with
        Netlist.inputs = [ { Netlist.port_name = "a"; port_width = 4 } ];
        wires =
          [ ("q", sig_ "a" +: const ~width:4 1);
            ("always", sig_ "a" ^: const ~width:4 3) ];
        outputs = [ ("q", sig_ "q" &: sig_ "always") ];
      }
  in
  let text = Verilog.emit m in
  check_bool "emits despite collisions" true (contains text "endmodule");
  (* The keyword got renamed. *)
  check_bool "keyword renamed" true (contains text "always_1");
  (* Ports claim the pretty names; the clashing wire is suffixed. *)
  check_bool "output keeps its name" true (contains text "output wire [3:0] q");
  check_bool "wire disambiguated" true (contains text "wire [3:0] q_1;")

let suite =
  [ Alcotest.test_case "emit all designs" `Quick test_emit_all_designs;
    Alcotest.test_case "feature coverage" `Quick test_emit_features;
    Alcotest.test_case "hierarchical names" `Quick test_emit_hierarchical_names;
    Alcotest.test_case "golden counter" `Quick test_emit_golden_counter;
    Alcotest.test_case "name collisions" `Quick test_emit_name_collisions ]
