(* Tests for the TLM sockets: the same computation behind three
   communication abstractions (paper Section 4.4). *)

open Dfv_slm

let check_int = Alcotest.check Alcotest.int
let check_bool = Alcotest.check Alcotest.bool

let square x = x * x

let test_untimed () =
  let t = Tlm.untimed square in
  check_int "value" 49 (Tlm.transport t 7);
  check_int "count" 1 (Tlm.transactions t)

let test_loosely_timed () =
  let k = Kernel.create () in
  let t = Tlm.loosely_timed k ~latency:25 square in
  let results = ref [] in
  Kernel.thread k ~name:"initiator" (fun () ->
      for i = 1 to 4 do
        results := Tlm.transport t i :: !results
      done);
  Kernel.run k;
  check_bool "values" true (List.rev !results = [ 1; 4; 9; 16 ]);
  (* Four transactions, 25 units each: functional result identical to the
     untimed model, but time has passed. *)
  check_int "time" 100 (Kernel.now k);
  check_int "count" 4 (Tlm.transactions t)

let test_queued_serializes () =
  let k = Kernel.create () in
  let t = Tlm.queued k ~name:"srv" ~depth:2 ~service_time:10 square in
  let done_at = Array.make 3 0 in
  for i = 0 to 2 do
    Kernel.thread k ~name:(Printf.sprintf "init%d" i) (fun () ->
        let r = Tlm.transport t (i + 1) in
        check_int "value" ((i + 1) * (i + 1)) r;
        done_at.(i) <- Kernel.now k)
  done;
  Kernel.run k;
  (* The server serializes: completions at 10, 20, 30 in some order. *)
  let sorted = Array.copy done_at in
  Array.sort compare sorted;
  check_bool "serialized completions" true (sorted = [| 10; 20; 30 |]);
  check_int "count" 3 (Tlm.transactions t)

let test_queued_backpressure () =
  let k = Kernel.create () in
  let t = Tlm.queued k ~name:"srv" ~depth:1 ~service_time:5 square in
  let issue_times = ref [] in
  Kernel.thread k ~name:"producer" (fun () ->
      for i = 1 to 4 do
        ignore (Tlm.transport t i);
        issue_times := Kernel.now k :: !issue_times
      done);
  Kernel.run k;
  (* Each transport blocks until served: completion times 5,10,15,20. *)
  check_bool "blocking transports" true
    (List.rev !issue_times = [ 5; 10; 15; 20 ])

let test_same_kernel_reuse () =
  (* The paper's reuse claim in miniature: one computation function, three
     targets, identical functional results. *)
  let k = Kernel.create () in
  let u = Tlm.untimed square in
  let lt = Tlm.loosely_timed k ~latency:3 square in
  let q = Tlm.queued k ~name:"s" ~depth:4 ~service_time:2 square in
  let out_u = ref [] and out_lt = ref [] and out_q = ref [] in
  Kernel.thread k ~name:"driver" (fun () ->
      for i = 1 to 8 do
        out_u := Tlm.transport u i :: !out_u;
        out_lt := Tlm.transport lt i :: !out_lt;
        out_q := Tlm.transport q i :: !out_q
      done);
  Kernel.run k;
  check_bool "all three agree" true (!out_u = !out_lt && !out_lt = !out_q)

let suite =
  [ Alcotest.test_case "untimed" `Quick test_untimed;
    Alcotest.test_case "loosely timed" `Quick test_loosely_timed;
    Alcotest.test_case "queued serializes" `Quick test_queued_serializes;
    Alcotest.test_case "queued backpressure" `Quick test_queued_backpressure;
    Alcotest.test_case "three abstractions, one function" `Quick
      test_same_kernel_reuse ]
