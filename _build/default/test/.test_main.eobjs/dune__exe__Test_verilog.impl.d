test/test_verilog.ml: Alcotest Alu Bitvec Conv_image Dfv_bitvec Dfv_designs Dfv_rtl Expr Fir Gcd Image_chain List Memsys Netlist String Verilog
