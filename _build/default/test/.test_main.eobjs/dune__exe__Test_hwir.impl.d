test/test_hwir.ml: Aig Alcotest Array Ast Bitvec Dfv_aig Dfv_bitvec Dfv_hwir Elab Guideline Hashtbl Interp List Random String Typecheck Word
