test/test_cint.ml: Alcotest Bitvec Cint Dfv_bitvec Int64 List QCheck QCheck_alcotest
