test/test_designs.ml: Alcotest Alu Array Bitvec Checker Conv_image Dfv_bitvec Dfv_cosim Dfv_designs Dfv_hwir Dfv_sec Fir Gcd Interp List Memsys Minifloat Random Scoreboard String Txn_engine Uart
