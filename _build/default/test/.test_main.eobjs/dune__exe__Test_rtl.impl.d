test/test_rtl.ml: Aig Alcotest Array Bitvec Buffer Dfv_aig Dfv_bitvec Dfv_rtl Expr Hashtbl Lint List Netlist Printf Random Sim String Synth Vcd Word
