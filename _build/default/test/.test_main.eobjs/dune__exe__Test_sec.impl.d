test/test_sec.ml: Alcotest Array Ast Bitvec Checker Dfv_bitvec Dfv_hwir Dfv_rtl Dfv_sec Expr Interp List Netlist Sim Spec String
