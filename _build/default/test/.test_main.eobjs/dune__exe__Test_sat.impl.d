test/test_sat.ml: Alcotest Array Dfv_sat Dimacs List Lit Printf QCheck QCheck_alcotest Solver String
