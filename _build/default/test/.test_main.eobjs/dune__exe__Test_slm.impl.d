test/test_slm.ml: Alcotest Clock Dfv_slm Fifo Kernel List Signal
