test/test_cosim.ml: Alcotest Array Bitvec Dfv_bitvec Dfv_cosim Dfv_rtl Expr List Netlist Printf Scoreboard Stream String Txn_engine
