test/test_sweep.ml: Aig Alcotest Array Bitvec Dfv_aig Dfv_bitvec List Random Sweep Word
