test/test_behsyn.ml: Alcotest Alu Ast Bitvec Checker Dfv_behsyn Dfv_bitvec Dfv_designs Dfv_hwir Dfv_rtl Dfv_sec Fir Gcd Image_chain Interp List Minifloat Netlist Option Random Sim Typecheck
