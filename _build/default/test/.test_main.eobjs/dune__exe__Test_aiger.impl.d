test/test_aiger.ml: Aig Aiger Alcotest Array Dfv_aig Dfv_bitvec List Printf Random String Word
