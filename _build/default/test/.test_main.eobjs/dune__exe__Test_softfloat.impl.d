test/test_softfloat.ml: Alcotest Dfv_softfloat F32 List Printf Random
