test/test_aig.ml: Aig Alcotest Array Bitvec Dfv_aig Dfv_bitvec List Printf Random Word
