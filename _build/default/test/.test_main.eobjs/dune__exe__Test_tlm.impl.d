test/test_tlm.ml: Alcotest Array Dfv_slm Kernel List Printf Tlm
