test/test_bitvec.ml: Alcotest Bitvec Dfv_bitvec List QCheck QCheck_alcotest
