test/test_core.ml: Alcotest Alu Array Ast Bitvec Checker Dfv_bitvec Dfv_core Dfv_cosim Dfv_designs Dfv_hwir Dfv_sec Flow Format Gcd Image_chain Interp List Pair Random Spec String
