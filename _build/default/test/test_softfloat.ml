(* Tests for the software binary32: bit-exactness against the host FPU
   under the IEEE profile, and the documented corner-cutting behaviour
   under the RTL profile. *)

open Dfv_softfloat

let check_bool = Alcotest.check Alcotest.bool
let check_int = Alcotest.check Alcotest.int

let hex x = Printf.sprintf "0x%08x" x

(* Host reference: compute in double, round once to binary32.  For
   +,-,* this double rounding is exact (53 >= 2*24 + 2). *)
let ref_add a b = F32.of_float (F32.to_float a +. F32.to_float b)
let ref_sub a b = F32.of_float (F32.to_float a -. F32.to_float b)
let ref_mul a b = F32.of_float (F32.to_float a *. F32.to_float b)

let same_f32 got expect =
  if F32.is_nan got && F32.is_nan expect then true else got = expect

let check_against_host op_name mine reference a b =
  let got = mine F32.ieee a b in
  let expect = reference a b in
  if not (same_f32 got expect) then
    Alcotest.failf "%s %s %s: got %s, host says %s" (hex a) op_name (hex b)
      (F32.to_string got) (F32.to_string expect)

(* Interesting bit patterns: all the IEEE corner regions. *)
let corner_values =
  [ 0x00000000 (* +0 *); 0x80000000 (* -0 *); 0x00000001 (* min denormal *);
    0x80000001; 0x007fffff (* max denormal *); 0x807fffff;
    0x00800000 (* min normal *); 0x80800000; 0x3f800000 (* 1.0 *);
    0xbf800000 (* -1.0 *); 0x3f800001 (* 1.0+ulp *); 0x40000000 (* 2.0 *);
    0x7f7fffff (* max finite *); 0xff7fffff; 0x7f800000 (* +inf *);
    0xff800000 (* -inf *); 0x7fc00000 (* qnan *); 0x7f800001 (* snan *);
    0x34000000 (* 2^-23 *); 0x4b000000 (* 2^23 *); 0x4b7fffff;
    0x3effffff; 0x3f000000 (* 0.5 *); 0x3f000001; 0x4effffff;
    0x00ffffff; 0x017fffff; 0x7e800000; 0x01000000 ]

let test_corners_exhaustive_pairs () =
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          check_against_host "+" F32.add ref_add a b;
          check_against_host "-" F32.sub ref_sub a b;
          check_against_host "*" F32.mul ref_mul a b)
        corner_values)
    corner_values

let random_f32 st =
  (* Random patterns cover normals, denormals and specials. *)
  (Random.State.bits st land 0xFFFF)
  lor ((Random.State.bits st land 0xFFFF) lsl 16)

let test_random_vs_host () =
  let st = Random.State.make [| 2718 |] in
  for _ = 1 to 20_000 do
    let a = random_f32 st and b = random_f32 st in
    check_against_host "+" F32.add ref_add a b;
    check_against_host "-" F32.sub ref_sub a b;
    check_against_host "*" F32.mul ref_mul a b
  done

let test_random_near_misses () =
  (* Operands with close exponents stress cancellation and rounding. *)
  let st = Random.State.make [| 3141 |] in
  for _ = 1 to 20_000 do
    let ea = 1 + Random.State.int st 253 in
    let eb = max 1 (min 254 (ea + Random.State.int st 5 - 2)) in
    let a =
      F32.of_parts
        ~sign:(Random.State.bool st)
        ~exponent:ea
        ~mantissa:(Random.State.int st 0x800000)
    in
    let b =
      F32.of_parts
        ~sign:(Random.State.bool st)
        ~exponent:eb
        ~mantissa:(Random.State.int st 0x800000)
    in
    check_against_host "+" F32.add ref_add a b;
    check_against_host "*" F32.mul ref_mul a b
  done

let test_decode_helpers () =
  check_bool "nan" true (F32.is_nan F32.quiet_nan);
  check_bool "inf" true (F32.is_infinity (F32.infinity false));
  check_bool "neg inf sign" true (F32.sign (F32.infinity true));
  check_bool "denormal" true (F32.is_denormal 0x00000001);
  check_bool "zero" true (F32.is_zero 0x80000000);
  check_int "exponent of 1.0" 127 (F32.exponent (F32.of_float 1.0));
  check_int "mantissa of 1.5" 0x400000 (F32.mantissa (F32.of_float 1.5));
  check_bool "roundtrip" true (F32.of_float (F32.to_float 0x41c80000) = 0x41c80000);
  check_bool "bitvec roundtrip" true
    (F32.of_bitvec (F32.to_bitvec 0x12345678) = 0x12345678)

let test_equal_numeric () =
  check_bool "nan = nan" true (F32.equal_numeric F32.quiet_nan 0x7f800001;);
  check_bool "+0 = -0" true (F32.equal_numeric 0 0x80000000);
  check_bool "1 <> 2" false
    (F32.equal_numeric (F32.of_float 1.0) (F32.of_float 2.0))

(* --- corner-cutting profile -------------------------------------------- *)

let test_rtl_profile_flushes_denormals () =
  let tiny = 0x00000001 (* smallest denormal *) in
  (* IEEE: tiny + tiny = 2*tiny, still denormal. *)
  let ieee_sum = F32.add F32.ieee tiny tiny in
  check_bool "ieee keeps denormal" true (F32.is_denormal ieee_sum);
  check_int "ieee exact" 0x00000002 ieee_sum;
  (* RTL: denormal inputs flushed; sum is zero. *)
  let rtl_sum = F32.add F32.rtl_lite tiny tiny in
  check_bool "rtl flushes to zero" true (F32.is_zero rtl_sum);
  (* A result that *becomes* denormal is flushed too. *)
  let min_normal = 0x00800000 in
  let almost = 0x00800001 in
  let ieee_diff = F32.sub F32.ieee almost min_normal in
  check_bool "ieee diff denormal" true (F32.is_denormal ieee_diff);
  let rtl_diff = F32.sub F32.rtl_lite almost min_normal in
  check_bool "rtl diff flushed" true (F32.is_zero rtl_diff)

let test_rtl_profile_no_specials () =
  (* Overflow saturates instead of producing infinity. *)
  let m = F32.max_finite false in
  let ieee_over = F32.add F32.ieee m m in
  check_bool "ieee overflows to inf" true (F32.is_infinity ieee_over);
  let rtl_over = F32.add F32.rtl_lite m m in
  check_bool "rtl saturates" true (rtl_over = m);
  (* Infinity inputs are clamped to max finite. *)
  let inf = F32.infinity false in
  let rtl_r = F32.add F32.rtl_lite inf (F32.of_float 1.0) in
  check_bool "inf clamped (not inf)" true (not (F32.is_infinity rtl_r));
  (* NaN inputs: exponent-255 patterns are clamped, so no NaN results. *)
  let rtl_nan = F32.mul F32.rtl_lite F32.quiet_nan (F32.of_float 2.0) in
  check_bool "no nan out" true (not (F32.is_nan rtl_nan))

let test_profiles_agree_on_normal_range () =
  (* On well-scaled inputs the profiles agree bit-for-bit — exactly why
     the paper's input constraints make SEC succeed on such pairs. *)
  let st = Random.State.make [| 99 |] in
  for _ = 1 to 5_000 do
    (* Exponents in the mid range: no overflow, no denormals. *)
    let mk () =
      F32.of_parts
        ~sign:(Random.State.bool st)
        ~exponent:(64 + Random.State.int st 128)
        ~mantissa:(Random.State.int st 0x800000)
    in
    let a = mk () and b = mk () in
    let i = F32.add F32.ieee a b and r = F32.add F32.rtl_lite a b in
    if i <> r then
      Alcotest.failf "profiles diverge on %s + %s: %s vs %s" (hex a) (hex b)
        (F32.to_string i) (F32.to_string r);
    let im = F32.mul F32.ieee a b and rm = F32.mul F32.rtl_lite a b in
    (* Multiplication can overflow/underflow even mid-range; only compare
       when the IEEE result is a normal number. *)
    if
      (not (F32.is_infinity im)) && (not (F32.is_denormal im))
      && not (F32.is_zero im)
    then
      if im <> rm then
        Alcotest.failf "mul profiles diverge on %s * %s" (hex a) (hex b)
  done

let suite =
  [ Alcotest.test_case "corner pairs vs host FPU" `Quick
      test_corners_exhaustive_pairs;
    Alcotest.test_case "random vs host FPU" `Quick test_random_vs_host;
    Alcotest.test_case "near-exponent cancellation vs host" `Quick
      test_random_near_misses;
    Alcotest.test_case "decode helpers" `Quick test_decode_helpers;
    Alcotest.test_case "equal_numeric" `Quick test_equal_numeric;
    Alcotest.test_case "rtl profile flushes denormals" `Quick
      test_rtl_profile_flushes_denormals;
    Alcotest.test_case "rtl profile no specials" `Quick
      test_rtl_profile_no_specials;
    Alcotest.test_case "profiles agree in normal range" `Quick
      test_profiles_agree_on_normal_range ]
