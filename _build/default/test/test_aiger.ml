(* Tests for AIGER interchange: round-trips preserve functions. *)

open Dfv_aig

let check_bool = Alcotest.check Alcotest.bool
let check_int = Alcotest.check Alcotest.int

let test_roundtrip_simple () =
  let g = Aig.create () in
  let a = Aig.input ~name:"a" g and b = Aig.input ~name:"b" g in
  let f = Aig.xor_ g a b in
  let text = Aiger.to_string g ~outputs:[ ("f", f) ] in
  let g2, outs = Aiger.of_string text in
  check_int "one output" 1 (List.length outs);
  let name, l2 = List.hd outs in
  check_bool "name preserved" true (name = "f");
  (* Function check over all four assignments. *)
  List.iter
    (fun (va, vb) ->
      let v1 = Aig.eval g (fun i -> if i = 0 then va else vb) f in
      let v2 = Aig.eval g2 (fun i -> if i = 0 then va else vb) l2 in
      check_bool "same function" v1 v2)
    [ (false, false); (false, true); (true, false); (true, true) ]

let test_roundtrip_random () =
  let st = Random.State.make [| 404 |] in
  for _ = 1 to 20 do
    let g = Aig.create () in
    let ninputs = 3 + Random.State.int st 5 in
    let inputs = Array.init ninputs (fun _ -> Aig.input g) in
    let pool = ref (Array.to_list inputs) in
    for _ = 1 to 30 do
      let pick () =
        let l = List.nth !pool (Random.State.int st (List.length !pool)) in
        if Random.State.bool st then Aig.not_ l else l
      in
      pool := Aig.and_ g (pick ()) (pick ()) :: !pool
    done;
    let outputs =
      List.mapi (fun i l -> (Printf.sprintf "out%d" i, l))
        (List.filteri (fun i _ -> i < 4) !pool)
    in
    let g2, outs2 = Aiger.of_string (Aiger.to_string g ~outputs) in
    for _ = 1 to 40 do
      let assignment = Array.init ninputs (fun _ -> Random.State.bool st) in
      let v1 = Aig.simulate g assignment in
      let v2 = Aig.simulate g2 assignment in
      List.iter2
        (fun (_, l1) (_, l2) ->
          check_bool "round-trip function" (Aig.lit_of_node_value v1 l1)
            (Aig.lit_of_node_value v2 l2))
        outputs outs2
    done
  done

let test_constant_outputs () =
  let g = Aig.create () in
  let a = Aig.input g in
  let z = Aig.and_ g a (Aig.not_ a) in
  let text =
    Aiger.to_string g ~outputs:[ ("zero", z); ("one", Aig.not_ z) ]
  in
  let _, outs = Aiger.of_string text in
  check_bool "zero is false" true (List.assoc "zero" outs = Aig.false_);
  check_bool "one is true" true (List.assoc "one" outs = Aig.true_)

let test_header_counts () =
  let g = Aig.create () in
  let a = Aig.input g and b = Aig.input g in
  let f = Aig.and_ g a b in
  let text = Aiger.to_string g ~outputs:[ ("f", f) ] in
  match String.split_on_char '\n' text with
  | header :: _ ->
    check_bool "header" true (header = "aag 3 2 0 1 1")
  | [] -> Alcotest.fail "empty"

let test_word_level_export () =
  (* A whole adder cone exports and re-imports functionally. *)
  let g = Aig.create () in
  let a = Word.inputs ~name:"a" g 8 and b = Word.inputs ~name:"b" g 8 in
  let s = Word.add g a b in
  let outputs = Array.to_list (Array.mapi (fun i l -> (Printf.sprintf "s%d" i, l)) s) in
  let g2, outs2 = Aiger.of_string (Aiger.to_string g ~outputs) in
  let st = Random.State.make [| 8 |] in
  for _ = 1 to 100 do
    let x = Random.State.int st 256 and y = Random.State.int st 256 in
    let bits =
      Array.append
        (Dfv_bitvec.Bitvec.to_bits (Dfv_bitvec.Bitvec.create ~width:8 x))
        (Dfv_bitvec.Bitvec.to_bits (Dfv_bitvec.Bitvec.create ~width:8 y))
    in
    let v2 = Aig.simulate g2 bits in
    let got =
      List.fold_left
        (fun acc (_, l) ->
          (2 * acc) + if Aig.lit_of_node_value v2 l then 1 else 0)
        0 (List.rev outs2)
    in
    check_int "sum" ((x + y) land 0xff) got
  done

let test_parse_errors () =
  let expect s =
    match Aiger.of_string s with
    | exception Aiger.Parse_error _ -> ()
    | _ -> Alcotest.failf "expected parse error for %S" s
  in
  expect "";
  expect "aag 1 1 1 0 0\n2\n2 2\n" (* latches unsupported *);
  expect "aig 1 1 0 0 0\n" (* binary format *);
  expect "aag x y z w v\n";
  expect "aag 1 1 0 1 0\n2\n" (* truncated: missing output line *)

let suite =
  [ Alcotest.test_case "roundtrip simple" `Quick test_roundtrip_simple;
    Alcotest.test_case "roundtrip random" `Quick test_roundtrip_random;
    Alcotest.test_case "constant outputs" `Quick test_constant_outputs;
    Alcotest.test_case "header counts" `Quick test_header_counts;
    Alcotest.test_case "word-level export" `Quick test_word_level_export;
    Alcotest.test_case "parse errors" `Quick test_parse_errors ]
