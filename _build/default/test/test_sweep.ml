(* Tests for SAT sweeping: function preservation and merge power. *)

open Dfv_bitvec
open Dfv_aig

let check_bool = Alcotest.check Alcotest.bool
let check_int = Alcotest.check Alcotest.int

(* Build a random AIG and check fraig preserves its function. *)
let test_fraig_preserves_function () =
  let st = Random.State.make [| 31337 |] in
  for _round = 1 to 20 do
    let g = Aig.create () in
    let ninputs = 2 + Random.State.int st 6 in
    let inputs = Array.init ninputs (fun _ -> Aig.input g) in
    let pool = ref (Array.to_list inputs) in
    for _ = 1 to 40 do
      let pick () =
        let l = List.nth !pool (Random.State.int st (List.length !pool)) in
        if Random.State.bool st then Aig.not_ l else l
      in
      let n = Aig.and_ g (pick ()) (pick ()) in
      pool := n :: !pool
    done;
    let roots =
      List.filteri (fun i _ -> i < 5) !pool
    in
    let g', sub = Sweep.fraig g in
    (* Compare on random input assignments. *)
    for _ = 1 to 50 do
      let assignment = Array.init ninputs (fun _ -> Random.State.bool st) in
      let v = Aig.simulate g assignment in
      let v' = Aig.simulate g' assignment in
      List.iter
        (fun r ->
          let a = Aig.lit_of_node_value v r in
          let b = Aig.lit_of_node_value v' (sub r) in
          if a <> b then Alcotest.fail "fraig changed a root's function")
        roots
    done
  done

let test_fraig_merges_equal_structures () =
  (* Two structurally different formulations of the same function end up
     at the same literal. *)
  let g = Aig.create () in
  let a = Aig.input g and b = Aig.input g and c = Aig.input g in
  (* (a & b) & c  vs  a & (b & c) *)
  let x = Aig.and_ g (Aig.and_ g a b) c in
  let y = Aig.and_ g a (Aig.and_ g b c) in
  check_bool "different before sweep" true (x <> y);
  let _, sub = Sweep.fraig g in
  check_int "same after sweep" (sub x) (sub y);
  (* De Morgan pair merges too (complement handling). *)
  let g = Aig.create () in
  let a = Aig.input g and b = Aig.input g in
  let x = Aig.not_ (Aig.and_ g a b) in
  let y = Aig.or_ g (Aig.not_ a) (Aig.not_ b) in
  let _, sub = Sweep.fraig g in
  check_int "de morgan merges" (sub x) (sub y)

let test_fraig_merges_adders () =
  (* Word-level: two adder constructions; after sweeping, every output
     bit pair collapses to one literal — this is what makes monolithic
     SEC tractable. *)
  let g = Aig.create () in
  let width = 8 in
  let a = Word.inputs g width and b = Word.inputs g width in
  let s1 = Word.add g a b in
  let s2 = Word.lognot (Word.sub g (Word.lognot a) b) in
  let _, sub = Sweep.fraig g in
  Array.iteri
    (fun i l1 ->
      if sub l1 <> sub s2.(i) then
        Alcotest.failf "bit %d not merged by sweeping" i)
    s1

let test_fraig_keeps_inequivalent_apart () =
  (* Nodes that agree on most patterns but differ somewhere must not be
     merged (the refinement path). *)
  let g = Aig.create () in
  let width = 10 in
  let a = Word.inputs g width in
  (* f = (a == 0), g = (a == 1): agree except on two inputs out of 1024 —
     random patterns likely never distinguish them, so the SAT query and
     refinement must. *)
  let zero = Word.const (Bitvec.zero width) in
  let one = Word.const (Bitvec.create ~width 1) in
  let f = Word.eq g a zero in
  let h = Word.eq g a one in
  let g', sub = Sweep.fraig g in
  check_bool "not merged" true (sub f <> sub h);
  (* And both still compute their function. *)
  let probe v expect_f expect_h =
    let values = Aig.simulate g' (Bitvec.to_bits (Bitvec.create ~width v)) in
    check_bool "f value" expect_f (Aig.lit_of_node_value values (sub f));
    check_bool "h value" expect_h (Aig.lit_of_node_value values (sub h))
  in
  probe 0 true false;
  probe 1 false true;
  probe 5 false false

let test_fraig_reduces_duplicated_logic () =
  (* A miter of two copies of the same function: sweeping reduces it to
     far fewer nodes. *)
  let g = Aig.create () in
  let width = 8 in
  let a = Word.inputs g width and b = Word.inputs g width in
  let m1 = Word.mul g a b in
  (* A slightly restructured multiply: (a * b) computed via shifted adds
     in a different association order. *)
  let m2 = Word.mul g b a in
  let diff = Word.ne g m1 m2 in
  let before = Aig.num_ands g in
  (* Multiplier commutativity is not structurally local: some candidate
     pairs need deep proofs, so give the sweeper a generous per-pair
     budget for this test. *)
  let g', sub = Sweep.fraig ~max_conflicts:50_000 g in
  check_bool "miter is constant false" true (sub diff = Aig.false_);
  check_bool "graph shrank" true (Aig.num_ands g' < before)

let suite =
  [ Alcotest.test_case "fraig preserves function" `Quick
      test_fraig_preserves_function;
    Alcotest.test_case "fraig merges equal structures" `Quick
      test_fraig_merges_equal_structures;
    Alcotest.test_case "fraig merges adder forms" `Quick
      test_fraig_merges_adders;
    Alcotest.test_case "fraig keeps inequivalent apart" `Quick
      test_fraig_keeps_inequivalent_apart;
    Alcotest.test_case "fraig reduces duplicated logic" `Quick
      test_fraig_reduces_duplicated_logic ]
