(* Tests for the AIG and its word-level builder: every word operator is
   cross-checked against the Bitvec reference semantics, both by
   simulation and (for a few) by SAT. *)

open Dfv_bitvec
open Dfv_aig

let check_bool = Alcotest.check Alcotest.bool
let check_int = Alcotest.check Alcotest.int

(* --- plain AIG -------------------------------------------------------- *)

let test_constant_folding () =
  let g = Aig.create () in
  let a = Aig.input g in
  check_int "x & 0" Aig.false_ (Aig.and_ g a Aig.false_);
  check_int "x & 1" a (Aig.and_ g a Aig.true_);
  check_int "x & x" a (Aig.and_ g a a);
  check_int "x & ~x" Aig.false_ (Aig.and_ g a (Aig.not_ a));
  check_int "x | ~x" Aig.true_ (Aig.or_ g a (Aig.not_ a));
  check_int "~~x" a (Aig.not_ (Aig.not_ a))

let test_structural_hashing () =
  let g = Aig.create () in
  let a = Aig.input g and b = Aig.input g in
  let x = Aig.and_ g a b in
  let y = Aig.and_ g b a in
  check_int "commutative hash" x y;
  let before = Aig.num_ands g in
  let _ = Aig.and_ g a b in
  check_int "no new node" before (Aig.num_ands g)

let test_eval () =
  let g = Aig.create () in
  let a = Aig.input g and b = Aig.input g in
  let f = Aig.xor_ g a b in
  let e va vb = Aig.eval g (fun i -> if i = 0 then va else vb) f in
  check_bool "00" false (e false false);
  check_bool "01" true (e false true);
  check_bool "10" true (e true false);
  check_bool "11" false (e true true)

let test_mux () =
  let g = Aig.create () in
  let s = Aig.input g and a = Aig.input g and b = Aig.input g in
  let m = Aig.mux g ~sel:s a b in
  let e vs va vb =
    Aig.eval g (fun i -> match i with 0 -> vs | 1 -> va | _ -> vb) m
  in
  check_bool "sel=1 -> a" true (e true true false);
  check_bool "sel=0 -> b" false (e false true false);
  check_bool "sel=0 -> b'" true (e false false true)

let test_check_sat () =
  let g = Aig.create () in
  let a = Aig.input g and b = Aig.input g in
  (match Aig.check_sat g (Aig.and_ g a b) with
  | `Sat w ->
    check_bool "witness a" true w.(0);
    check_bool "witness b" true w.(1)
  | `Unsat -> Alcotest.fail "expected sat");
  (match Aig.check_sat g (Aig.and_ g a (Aig.not_ a)) with
  | `Unsat -> ()
  | `Sat _ -> Alcotest.fail "expected unsat");
  (match Aig.check_sat g Aig.true_ with
  | `Sat _ -> ()
  | `Unsat -> Alcotest.fail "constant true is sat")

let test_equivalent () =
  let g = Aig.create () in
  let a = Aig.input g and b = Aig.input g in
  (* De Morgan: ~(a & b) = ~a | ~b *)
  let lhs = Aig.not_ (Aig.and_ g a b) in
  let rhs = Aig.or_ g (Aig.not_ a) (Aig.not_ b) in
  (match Aig.equivalent g lhs rhs with
  | `Yes -> ()
  | `No _ -> Alcotest.fail "De Morgan should hold");
  (match Aig.equivalent g (Aig.and_ g a b) (Aig.or_ g a b) with
  | `No w ->
    (* Witness must actually distinguish the two. *)
    let va = w.(0) and vb = w.(1) in
    check_bool "witness distinguishes" true ((va && vb) <> (va || vb))
  | `Yes -> Alcotest.fail "and /= or")

(* --- word level: cross-check against Bitvec --------------------------- *)

(* Evaluate a unary word function against its Bitvec reference. *)
let check_unary_op ~name ~width op_w op_bv =
  let st = Random.State.make [| 42; width |] in
  for _ = 1 to 64 do
    let x = Bitvec.random st ~width in
    let g = Aig.create () in
    let xi = Word.inputs g width in
    let r = op_w g xi in
    let values = Aig.simulate g (Bitvec.to_bits x) in
    let got = Word.to_bitvec g values r in
    let expect = op_bv x in
    if not (Bitvec.equal got expect) then
      Alcotest.failf "%s(%s): got %s, expected %s" name (Bitvec.to_string x)
        (Bitvec.to_string got) (Bitvec.to_string expect)
  done

let check_binary_op ?(iters = 64) ~name ~width op_w op_bv () =
  let st = Random.State.make [| 17; width |] in
  for _ = 1 to iters do
    let x = Bitvec.random st ~width and y = Bitvec.random st ~width in
    let g = Aig.create () in
    let xi = Word.inputs g width and yi = Word.inputs g width in
    let r = op_w g xi yi in
    let inputs = Array.append (Bitvec.to_bits x) (Bitvec.to_bits y) in
    let values = Aig.simulate g inputs in
    let got = Word.to_bitvec g values r in
    let expect = op_bv x y in
    if not (Bitvec.equal got expect) then
      Alcotest.failf "%s(%s, %s): got %s, expected %s" name
        (Bitvec.to_string x) (Bitvec.to_string y) (Bitvec.to_string got)
        (Bitvec.to_string expect)
  done

let check_pred ~name ~width op_w op_bv =
  let st = Random.State.make [| 99; width |] in
  for _ = 1 to 128 do
    let x = Bitvec.random st ~width and y = Bitvec.random st ~width in
    let g = Aig.create () in
    let xi = Word.inputs g width and yi = Word.inputs g width in
    let r = op_w g xi yi in
    let inputs = Array.append (Bitvec.to_bits x) (Bitvec.to_bits y) in
    let values = Aig.simulate g inputs in
    let got = Aig.lit_of_node_value values r in
    let expect = op_bv x y in
    if got <> expect then
      Alcotest.failf "%s(%s, %s): got %b, expected %b" name
        (Bitvec.to_string x) (Bitvec.to_string y) got expect
  done

let test_word_add () =
  List.iter
    (fun w -> check_binary_op ~name:"add" ~width:w Word.add Bitvec.add ())
    [ 1; 7; 8; 32; 65 ]

let test_word_sub () =
  List.iter
    (fun w -> check_binary_op ~name:"sub" ~width:w Word.sub Bitvec.sub ())
    [ 1; 8; 33 ]

let test_word_neg () =
  List.iter
    (fun w -> check_unary_op ~name:"neg" ~width:w Word.neg Bitvec.neg)
    [ 1; 8; 40 ]

let test_word_mul () =
  List.iter
    (fun w -> check_binary_op ~name:"mul" ~width:w Word.mul Bitvec.mul ())
    [ 1; 4; 8; 16 ]

let test_word_div () =
  List.iter
    (fun w ->
      check_binary_op ~iters:32 ~name:"udiv" ~width:w Word.udiv
        (fun a b -> if Bitvec.is_zero b then Bitvec.ones w else Bitvec.udiv a b)
        ();
      check_binary_op ~iters:32 ~name:"urem" ~width:w Word.urem
        (fun a b -> if Bitvec.is_zero b then a else Bitvec.urem a b)
        ())
    [ 1; 4; 8 ]

let test_word_div_exhaustive_4bit () =
  (* Exhaustive 4-bit check of the restoring divider. *)
  let g = Aig.create () in
  let xi = Word.inputs g 4 and yi = Word.inputs g 4 in
  let q = Word.udiv g xi yi and r = Word.urem g xi yi in
  for a = 0 to 15 do
    for b = 1 to 15 do
      let inputs =
        Array.append
          (Bitvec.to_bits (Bitvec.create ~width:4 a))
          (Bitvec.to_bits (Bitvec.create ~width:4 b))
      in
      let values = Aig.simulate g inputs in
      check_int
        (Printf.sprintf "%d / %d" a b)
        (a / b)
        (Bitvec.to_int (Word.to_bitvec g values q));
      check_int
        (Printf.sprintf "%d %% %d" a b)
        (a mod b)
        (Bitvec.to_int (Word.to_bitvec g values r))
    done
  done

let test_word_logic () =
  check_binary_op ~name:"and" ~width:16 Word.logand Bitvec.logand ();
  check_binary_op ~name:"or" ~width:16 Word.logor Bitvec.logor ();
  check_binary_op ~name:"xor" ~width:16 Word.logxor Bitvec.logxor ();
  check_unary_op ~name:"not" ~width:16 (fun _g a -> Word.lognot a) Bitvec.lognot

let test_word_predicates () =
  List.iter
    (fun w ->
      check_pred ~name:"eq" ~width:w Word.eq Bitvec.equal;
      check_pred ~name:"ne" ~width:w Word.ne (fun a b -> not (Bitvec.equal a b));
      check_pred ~name:"ult" ~width:w Word.ult Bitvec.ult;
      check_pred ~name:"ule" ~width:w Word.ule Bitvec.ule;
      check_pred ~name:"slt" ~width:w Word.slt Bitvec.slt;
      check_pred ~name:"sle" ~width:w Word.sle Bitvec.sle)
    [ 1; 8; 17 ]

let test_word_reduce () =
  let width = 9 in
  let st = Random.State.make [| 5 |] in
  for _ = 1 to 64 do
    let x = Bitvec.random st ~width in
    let g = Aig.create () in
    let xi = Word.inputs g width in
    let r_and = Word.reduce_and g xi in
    let r_or = Word.reduce_or g xi in
    let r_xor = Word.reduce_xor g xi in
    let values = Aig.simulate g (Bitvec.to_bits x) in
    check_bool "reduce_and" (Bitvec.reduce_and x)
      (Aig.lit_of_node_value values r_and);
    check_bool "reduce_or" (Bitvec.reduce_or x)
      (Aig.lit_of_node_value values r_or);
    check_bool "reduce_xor" (Bitvec.reduce_xor x)
      (Aig.lit_of_node_value values r_xor)
  done

let test_word_shifts_const () =
  List.iter
    (fun n ->
      check_unary_op ~name:"shl" ~width:13
        (fun g a -> Word.shift_left g a n)
        (fun x -> Bitvec.shift_left x n);
      check_unary_op ~name:"lshr" ~width:13
        (fun g a -> Word.shift_right_logical g a n)
        (fun x -> Bitvec.shift_right_logical x n);
      check_unary_op ~name:"ashr" ~width:13
        (fun g a -> Word.shift_right_arith g a n)
        (fun x -> Bitvec.shift_right_arith x n))
    [ 0; 1; 5; 12 ]

let test_word_shifts_var () =
  (* Variable shifts against the Bitvec reference with clamping. *)
  let width = 8 in
  let ref_shift f x amount =
    let n = Bitvec.to_int amount in
    if n >= width then None else Some (f x n)
  in
  let st = Random.State.make [| 7 |] in
  for _ = 1 to 200 do
    let x = Bitvec.random st ~width in
    let amt = Bitvec.random st ~width in
    let g = Aig.create () in
    let xi = Word.inputs g width and ai = Word.inputs g width in
    let inputs = Array.append (Bitvec.to_bits x) (Bitvec.to_bits amt) in
    let run op = Word.to_bitvec g (Aig.simulate g inputs) (op g xi ai) in
    let shl = run Word.shift_left_var in
    (match ref_shift Bitvec.shift_left x amt with
    | Some e -> check_bool "shl_var" true (Bitvec.equal shl e)
    | None -> check_bool "shl_var overflow" true (Bitvec.is_zero shl));
    let lshr = run Word.shift_right_logical_var in
    (match ref_shift Bitvec.shift_right_logical x amt with
    | Some e -> check_bool "lshr_var" true (Bitvec.equal lshr e)
    | None -> check_bool "lshr_var overflow" true (Bitvec.is_zero lshr));
    let ashr = run Word.shift_right_arith_var in
    match ref_shift Bitvec.shift_right_arith x amt with
    | Some e -> check_bool "ashr_var" true (Bitvec.equal ashr e)
    | None ->
      let expect = if Bitvec.msb x then Bitvec.ones width else Bitvec.zero width in
      check_bool "ashr_var overflow" true (Bitvec.equal ashr expect)
  done

let test_word_structure () =
  check_binary_op ~name:"concat" ~width:6
    (fun _g a b -> Word.concat [ a; b ])
    (fun x y -> Bitvec.concat [ x; y ])
    ();
  check_unary_op ~name:"select" ~width:12
    (fun _g a -> Word.select a ~hi:8 ~lo:3)
    (fun x -> Bitvec.select x ~hi:8 ~lo:3);
  check_unary_op ~name:"uresize grow" ~width:9
    (fun _g a -> Word.uresize a 17)
    (fun x -> Bitvec.uresize x 17);
  check_unary_op ~name:"sresize grow" ~width:9
    (fun _g a -> Word.sresize a 17)
    (fun x -> Bitvec.sresize x 17);
  check_unary_op ~name:"uresize shrink" ~width:9
    (fun _g a -> Word.uresize a 4)
    (fun x -> Bitvec.uresize x 4);
  check_unary_op ~name:"repeat" ~width:5
    (fun _g a -> Word.repeat a 3)
    (fun x -> Bitvec.repeat x 3)

let test_word_mux_index () =
  let g = Aig.create () in
  let words = Array.init 4 (fun k -> Word.const (Bitvec.create ~width:8 (10 * k))) in
  let idx = Word.inputs g 3 in
  let default = Word.const (Bitvec.create ~width:8 255) in
  let r = Word.mux_index g ~default idx words in
  for k = 0 to 7 do
    let inputs = Bitvec.to_bits (Bitvec.create ~width:3 k) in
    let values = Aig.simulate g inputs in
    let got = Bitvec.to_int (Word.to_bitvec g values r) in
    let expect = if k < 4 then 10 * k else 255 in
    check_int (Printf.sprintf "idx=%d" k) expect got
  done

(* SAT-level cross-check: addition built two different ways is proven
   equivalent by the solver (not just simulation). *)
let test_sat_equivalence_of_adders () =
  let width = 8 in
  let g = Aig.create () in
  let a = Word.inputs g width and b = Word.inputs g width in
  let sum1 = Word.add g a b in
  (* a + b = ~(~a - b) *)
  let sum2 = Word.lognot (Word.sub g (Word.lognot a) b) in
  let ok = ref true in
  for i = 0 to width - 1 do
    match Aig.equivalent g sum1.(i) sum2.(i) with
    | `Yes -> ()
    | `No _ -> ok := false
  done;
  check_bool "adders equivalent bitwise" true !ok

let test_sat_finds_distinguishing_input () =
  let width = 8 in
  let g = Aig.create () in
  let a = Word.inputs g width and b = Word.inputs g width in
  let good = Word.add g a b in
  (* A buggy adder: drops the carry into bit 4 (a realistic RTL typo). *)
  let bad = Array.copy good in
  bad.(4) <- Aig.xor_ g a.(4) b.(4);
  let found = ref false in
  for i = 0 to width - 1 do
    match Aig.equivalent g good.(i) bad.(i) with
    | `No w ->
      found := true;
      (* Check the witness truly distinguishes via simulation. *)
      let values = Aig.simulate g w in
      let vg = Aig.lit_of_node_value values good.(i) in
      let vb = Aig.lit_of_node_value values bad.(i) in
      check_bool "witness valid" true (vg <> vb)
    | `Yes -> ()
  done;
  check_bool "bug found" true !found

let suite =
  [ Alcotest.test_case "constant folding" `Quick test_constant_folding;
    Alcotest.test_case "structural hashing" `Quick test_structural_hashing;
    Alcotest.test_case "eval" `Quick test_eval;
    Alcotest.test_case "mux" `Quick test_mux;
    Alcotest.test_case "check_sat" `Quick test_check_sat;
    Alcotest.test_case "equivalent" `Quick test_equivalent;
    Alcotest.test_case "word add" `Quick test_word_add;
    Alcotest.test_case "word sub" `Quick test_word_sub;
    Alcotest.test_case "word neg" `Quick test_word_neg;
    Alcotest.test_case "word mul" `Quick test_word_mul;
    Alcotest.test_case "word div/rem" `Quick test_word_div;
    Alcotest.test_case "word div exhaustive 4-bit" `Quick
      test_word_div_exhaustive_4bit;
    Alcotest.test_case "word logic" `Quick test_word_logic;
    Alcotest.test_case "word predicates" `Quick test_word_predicates;
    Alcotest.test_case "word reductions" `Quick test_word_reduce;
    Alcotest.test_case "word shifts (const)" `Quick test_word_shifts_const;
    Alcotest.test_case "word shifts (variable)" `Quick test_word_shifts_var;
    Alcotest.test_case "word structure" `Quick test_word_structure;
    Alcotest.test_case "word mux_index" `Quick test_word_mux_index;
    Alcotest.test_case "SAT: adder forms equivalent" `Quick
      test_sat_equivalence_of_adders;
    Alcotest.test_case "SAT: injected bug found" `Quick
      test_sat_finds_distinguishing_input ]
