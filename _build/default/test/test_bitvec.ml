(* Tests for Bitvec: Verilog-semantics bit-vectors. *)

open Dfv_bitvec

let bv = Alcotest.testable Bitvec.pp Bitvec.equal

let check_bv = Alcotest.check bv
let check_int = Alcotest.check Alcotest.int
let check_bool = Alcotest.check Alcotest.bool
let check_str = Alcotest.check Alcotest.string

let v w x = Bitvec.create ~width:w x

(* --- construction / observation ----------------------------------- *)

let test_create_basic () =
  check_int "to_int" 5 (Bitvec.to_int (v 8 5));
  check_int "width" 8 (Bitvec.width (v 8 5));
  check_int "truncates" 44 (Bitvec.to_int (v 8 300));
  check_int "wrap negative" 0xff (Bitvec.to_int (v 8 (-1)));
  check_int "signed read" (-1) (Bitvec.to_signed_int (v 8 (-1)));
  check_int "signed read min" (-128) (Bitvec.to_signed_int (v 8 128));
  check_int "width 1" 1 (Bitvec.to_int (v 1 (-1)))

let test_create_wide () =
  let x = v 100 (-1) in
  check_int "popcount of -1 at 100 bits" 100 (Bitvec.popcount x);
  check_bool "msb" true (Bitvec.msb x);
  check_int "signed" (-1) (Bitvec.to_signed_int x);
  let y = v 100 12345 in
  check_int "roundtrip through 100 bits" 12345 (Bitvec.to_int y)

let test_invalid_width () =
  Alcotest.check_raises "zero width" (Bitvec.Invalid_width 0) (fun () ->
      ignore (Bitvec.zero 0));
  Alcotest.check_raises "negative width" (Bitvec.Invalid_width (-3)) (fun () ->
      ignore (Bitvec.create ~width:(-3) 0))

let test_bits_roundtrip () =
  let x = v 13 0x155a in
  check_bv "of_bits . to_bits" x (Bitvec.of_bits (Bitvec.to_bits x));
  check_bool "bit 1" true (Bitvec.get (v 8 2) 1);
  check_bool "bit 0" false (Bitvec.get (v 8 2) 0);
  let y = Bitvec.set_bit (Bitvec.zero 8) 3 true in
  check_int "set_bit" 8 (Bitvec.to_int y);
  check_int "set_bit clear" 0 (Bitvec.to_int (Bitvec.set_bit y 3 false))

let test_get_out_of_range () =
  Alcotest.check_raises "get oob"
    (Invalid_argument "Bitvec.get: bit 8 of 8-bit vector") (fun () ->
      ignore (Bitvec.get (v 8 0) 8))

(* --- text ----------------------------------------------------------- *)

let test_to_string () =
  check_str "hex" "8'h3a" (Bitvec.to_string (v 8 0x3a));
  check_str "hex pads" "12'h03a" (Bitvec.to_string (v 12 0x3a));
  check_str "bin" "4'b0101" (Bitvec.to_binary_string (v 4 5))

let test_of_string () =
  check_bv "hex" (v 8 0xff) (Bitvec.of_string "8'hff");
  check_bv "hex upper" (v 8 0xff) (Bitvec.of_string "8'hFF");
  check_bv "bin" (v 4 10) (Bitvec.of_string "4'b1010");
  check_bv "dec" (v 16 1234) (Bitvec.of_string "16'd1234");
  check_bv "oct" (v 12 0o777) (Bitvec.of_string "12'o777");
  check_bv "underscores" (v 16 0xabcd) (Bitvec.of_string "16'hab_cd");
  check_bv "roundtrip" (v 77 987654321)
    (Bitvec.of_string (Bitvec.to_string (v 77 987654321)))

let test_of_string_errors () =
  let expect_invalid s =
    match Bitvec.of_string s with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "expected Invalid_argument for %S" s
  in
  expect_invalid "8hff";
  expect_invalid "8'xff";
  expect_invalid "8'h";
  expect_invalid "0'h0";
  expect_invalid "4'hff" (* does not fit *);
  expect_invalid "8'b2"

(* --- arithmetic ----------------------------------------------------- *)

let test_add_wraps () =
  check_bv "simple" (v 8 5) (Bitvec.add (v 8 2) (v 8 3));
  check_bv "wrap" (v 8 0) (Bitvec.add (v 8 255) (v 8 1));
  check_bv "wrap mid" (v 8 4) (Bitvec.add (v 8 250) (v 8 10));
  Alcotest.check_raises "width mismatch" (Bitvec.Width_mismatch "add") (fun () ->
      ignore (Bitvec.add (v 8 1) (v 9 1)))

let test_add_carry () =
  let r = Bitvec.add_carry (v 8 255) (v 8 1) in
  check_int "width" 9 (Bitvec.width r);
  check_int "value" 256 (Bitvec.to_int r)

let test_sub_neg () =
  check_bv "sub" (v 8 255) (Bitvec.sub (v 8 1) (v 8 2));
  check_bv "neg" (v 8 0x80) (Bitvec.neg (v 8 0x80));
  check_bv "neg 1" (v 8 0xff) (Bitvec.neg (v 8 1))

let test_mul () =
  check_bv "simple" (v 8 6) (Bitvec.mul (v 8 2) (v 8 3));
  check_bv "wrap" (v 8 0x20) (Bitvec.mul (v 8 0x30) (v 8 0x06));
  let f = Bitvec.mul_full (v 8 255) (v 8 255) in
  check_int "full width" 16 (Bitvec.width f);
  check_int "full value" 65025 (Bitvec.to_int f)

let test_mul_wide () =
  (* (2^64 - 1)^2 computed at 128 bits, checked against known limbs. *)
  let m = Bitvec.sub (Bitvec.zero 64) (Bitvec.one 64) in
  let p = Bitvec.mul_full m m in
  (* (2^64-1)^2 = 2^128 - 2^65 + 1 *)
  let expect =
    Bitvec.add
      (Bitvec.sub (Bitvec.zero 128)
         (Bitvec.shift_left (Bitvec.one 128) 65))
      (Bitvec.one 128)
  in
  check_bv "(2^64-1)^2" expect p

let test_div_rem () =
  check_bv "udiv" (v 8 4) (Bitvec.udiv (v 8 13) (v 8 3));
  check_bv "urem" (v 8 1) (Bitvec.urem (v 8 13) (v 8 3));
  check_bv "sdiv trunc" (v 8 (-3)) (Bitvec.sdiv (v 8 (-7)) (v 8 2));
  check_bv "srem sign of dividend" (v 8 (-1)) (Bitvec.srem (v 8 (-7)) (v 8 2));
  check_bv "sdiv both negative" (v 8 3) (Bitvec.sdiv (v 8 (-7)) (v 8 (-2)));
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (Bitvec.udiv (v 8 1) (v 8 0)));
  Alcotest.check_raises "sdiv by zero" Division_by_zero (fun () ->
      ignore (Bitvec.sdiv (v 8 1) (v 8 0)))

(* The paper's Fig. 1: 8-bit signed addition is not associative because
   the intermediate wire overflows.  a = b = 64, c = -1 is a witness. *)
let test_fig1_nonassociativity () =
  let sext9 x = Bitvec.sresize x 9 in
  let order1 a b c =
    let tmp = Bitvec.add a b in
    Bitvec.add (sext9 tmp) (sext9 c)
  in
  let order2 a b c =
    let tmp = Bitvec.add b c in
    Bitvec.add (sext9 tmp) (sext9 a)
  in
  let a = v 8 64 and b = v 8 64 and c = v 8 (-1) in
  let o1 = order1 a b c and o2 = order2 a b c in
  check_bool "orders disagree" false (Bitvec.equal o1 o2);
  check_int "(a+b)+c" (-129) (Bitvec.to_signed_int o1);
  check_int "(b+c)+a" 127 (Bitvec.to_signed_int o2)

(* --- bitwise -------------------------------------------------------- *)

let test_logic () =
  check_bv "and" (v 8 0x0c) (Bitvec.logand (v 8 0x3c) (v 8 0x0f));
  check_bv "or" (v 8 0x3f) (Bitvec.logor (v 8 0x3c) (v 8 0x0f));
  check_bv "xor" (v 8 0x33) (Bitvec.logxor (v 8 0x3c) (v 8 0x0f));
  check_bv "not" (v 8 0xc3) (Bitvec.lognot (v 8 0x3c))

let test_shifts () =
  check_bv "shl" (v 8 0xf0) (Bitvec.shift_left (v 8 0x0f) 4);
  check_bv "shl out" (v 8 0) (Bitvec.shift_left (v 8 0xff) 8);
  check_bv "lshr" (v 8 0x0f) (Bitvec.shift_right_logical (v 8 0xf0) 4);
  check_bv "ashr neg" (v 8 0xff) (Bitvec.shift_right_arith (v 8 0x80) 7);
  check_bv "ashr pos" (v 8 0x07) (Bitvec.shift_right_arith (v 8 0x70) 4);
  check_bv "ashr all" (v 8 0xff) (Bitvec.shift_right_arith (v 8 0x80) 100);
  check_bv "shl across limbs" (Bitvec.shift_left (Bitvec.one 100) 77)
    (Bitvec.shift_left (Bitvec.shift_left (Bitvec.one 100) 40) 37)

let test_reduce () =
  check_bool "and of ones" true (Bitvec.reduce_and (v 5 31));
  check_bool "and not" false (Bitvec.reduce_and (v 5 30));
  check_bool "or" true (Bitvec.reduce_or (v 5 4));
  check_bool "or zero" false (Bitvec.reduce_or (v 5 0));
  check_bool "xor odd" true (Bitvec.reduce_xor (v 5 7));
  check_bool "xor even" false (Bitvec.reduce_xor (v 5 5))

(* --- structure ------------------------------------------------------ *)

let test_select_concat () =
  (* The paper's mask-and-shift example: selecting bits [23:16]. *)
  let x = v 32 0x00ab0000 in
  check_bv "select [23:16]" (v 8 0xab) (Bitvec.select x ~hi:23 ~lo:16);
  check_bv "select full" x (Bitvec.select x ~hi:31 ~lo:0);
  check_bv "concat" (v 12 0xabc)
    (Bitvec.concat [ v 4 0xa; v 4 0xb; v 4 0xc ]);
  check_bv "repeat" (v 8 0xaa) (Bitvec.repeat (v 2 2) 4);
  check_bv "select of concat"
    (v 4 0xb)
    (Bitvec.select (Bitvec.concat [ v 4 0xa; v 4 0xb; v 4 0xc ]) ~hi:7 ~lo:4)

let test_resize () =
  check_bv "uresize grow" (v 16 0xff) (Bitvec.uresize (v 8 0xff) 16);
  check_bv "sresize grow" (v 16 0xffff) (Bitvec.sresize (v 8 0xff) 16);
  check_bv "sresize pos" (v 16 0x7f) (Bitvec.sresize (v 8 0x7f) 16);
  check_bv "shrink" (v 4 0xf) (Bitvec.uresize (v 8 0xff) 4);
  check_bv "sresize shrink" (v 4 0xf) (Bitvec.sresize (v 8 0xff) 4);
  (* Growth across a limb boundary with the sign in the old top limb. *)
  check_int "sresize 32->100" (-5)
    (Bitvec.to_signed_int (Bitvec.sresize (v 32 (-5)) 100))

(* --- comparisons ---------------------------------------------------- *)

let test_compare () =
  check_bool "ult" true (Bitvec.ult (v 8 1) (v 8 2));
  check_bool "ult wrap" true (Bitvec.ult (v 8 1) (v 8 (-1)));
  check_bool "slt" true (Bitvec.slt (v 8 (-1)) (v 8 1));
  check_bool "sge" true (Bitvec.sge (v 8 1) (v 8 (-128)));
  check_bool "ule eq" true (Bitvec.ule (v 8 7) (v 8 7));
  check_bool "sgt" true (Bitvec.sgt (v 8 0) (v 8 (-1)));
  check_bool "uge" true (Bitvec.uge (v 8 255) (v 8 0));
  check_bool "equal widths differ" false (Bitvec.equal (v 8 1) (v 9 1))

(* --- qcheck properties ---------------------------------------------- *)

let gen_width = QCheck.Gen.int_range 1 128

let gen_pair_same_width =
  QCheck.Gen.(
    gen_width >>= fun w ->
    let st_vec st = Bitvec.random st ~width:w in
    pair st_vec st_vec)

let arb_pair =
  QCheck.make gen_pair_same_width
    ~print:(fun (a, b) -> Bitvec.to_string a ^ ", " ^ Bitvec.to_string b)

let arb_vec =
  QCheck.make
    QCheck.Gen.(gen_width >>= fun w -> fun st -> Bitvec.random st ~width:w)
    ~print:Bitvec.to_string

let prop_add_commutes =
  QCheck.Test.make ~name:"add commutes" ~count:500 arb_pair (fun (a, b) ->
      Bitvec.equal (Bitvec.add a b) (Bitvec.add b a))

let prop_add_sub_inverse =
  QCheck.Test.make ~name:"sub inverts add" ~count:500 arb_pair (fun (a, b) ->
      Bitvec.equal (Bitvec.sub (Bitvec.add a b) b) a)

let prop_neg_involution =
  QCheck.Test.make ~name:"neg involutive" ~count:500 arb_vec (fun a ->
      Bitvec.equal (Bitvec.neg (Bitvec.neg a)) a)

let prop_lognot_involution =
  QCheck.Test.make ~name:"lognot involutive" ~count:500 arb_vec (fun a ->
      Bitvec.equal (Bitvec.lognot (Bitvec.lognot a)) a)

let prop_mul_matches_int =
  (* Cross-check against OCaml ints at widths where they are exact. *)
  QCheck.Test.make ~name:"mul matches int reference" ~count:1000
    QCheck.(pair (int_bound 0x3FFFFFFF) (int_bound 0x3FFFFFFF))
    (fun (x, y) ->
      let a = Bitvec.create ~width:30 x and b = Bitvec.create ~width:30 y in
      Bitvec.to_int (Bitvec.mul_full a b) = x * y)

let prop_divrem_identity =
  QCheck.Test.make ~name:"q*b + r = a, r < b" ~count:500 arb_pair
    (fun (a, b) ->
      QCheck.assume (not (Bitvec.is_zero b));
      let q = Bitvec.udiv a b and r = Bitvec.urem a b in
      let w = Bitvec.width a in
      let back =
        Bitvec.add (Bitvec.uresize (Bitvec.mul_full q b) w) (Bitvec.uresize r w)
      in
      Bitvec.equal back a && Bitvec.ult r b)

let prop_string_roundtrip =
  QCheck.Test.make ~name:"of_string . to_string" ~count:500 arb_vec (fun a ->
      Bitvec.equal a (Bitvec.of_string (Bitvec.to_string a)))

let prop_concat_select =
  QCheck.Test.make ~name:"select splits concat" ~count:500 arb_pair
    (fun (a, b) ->
      let c = Bitvec.concat [ a; b ] in
      let wb = Bitvec.width b and wc = Bitvec.width c in
      Bitvec.equal (Bitvec.select c ~hi:(wb - 1) ~lo:0) b
      && Bitvec.equal (Bitvec.select c ~hi:(wc - 1) ~lo:wb) a)

let prop_shift_mul =
  QCheck.Test.make ~name:"shl k = mul by 2^k" ~count:500
    QCheck.(pair (int_bound 20) (int_bound 0xFFFFF))
    (fun (k, x) ->
      let a = Bitvec.create ~width:64 x in
      Bitvec.equal (Bitvec.shift_left a k)
        (Bitvec.mul a (Bitvec.create ~width:64 (1 lsl k))))

let prop_resize_preserves_unsigned =
  QCheck.Test.make ~name:"uresize grow preserves value" ~count:500 arb_vec
    (fun a ->
      let g = Bitvec.uresize a (Bitvec.width a + 17) in
      Bitvec.equal (Bitvec.uresize g (Bitvec.width a)) a
      && Bitvec.popcount g = Bitvec.popcount a)

let prop_sresize_preserves_signed =
  QCheck.Test.make ~name:"sresize grow preserves signed order" ~count:500
    arb_pair (fun (a, b) ->
      let w = Bitvec.width a + 9 in
      Bitvec.scompare a b
      = Bitvec.scompare (Bitvec.sresize a w) (Bitvec.sresize b w))

let prop_add_assoc_when_wide_enough =
  (* The Fig. 1 pathology disappears when the intermediate is wide enough:
     lifted to width+2 bits, both association orders agree. *)
  QCheck.Test.make ~name:"association orders agree with wide tmp" ~count:500
    QCheck.(triple small_signed_int small_signed_int small_signed_int)
    (fun (x, y, z) ->
      let w = 34 in
      let a = Bitvec.create ~width:w x
      and b = Bitvec.create ~width:w y
      and c = Bitvec.create ~width:w z in
      Bitvec.equal
        (Bitvec.add (Bitvec.add a b) c)
        (Bitvec.add (Bitvec.add b c) a))

let qcheck_props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_add_commutes; prop_add_sub_inverse; prop_neg_involution;
      prop_lognot_involution; prop_mul_matches_int; prop_divrem_identity;
      prop_string_roundtrip; prop_concat_select; prop_shift_mul;
      prop_resize_preserves_unsigned; prop_sresize_preserves_signed;
      prop_add_assoc_when_wide_enough ]

let suite =
  [ Alcotest.test_case "create basic" `Quick test_create_basic;
    Alcotest.test_case "create wide" `Quick test_create_wide;
    Alcotest.test_case "invalid width" `Quick test_invalid_width;
    Alcotest.test_case "bits roundtrip" `Quick test_bits_roundtrip;
    Alcotest.test_case "get out of range" `Quick test_get_out_of_range;
    Alcotest.test_case "to_string" `Quick test_to_string;
    Alcotest.test_case "of_string" `Quick test_of_string;
    Alcotest.test_case "of_string errors" `Quick test_of_string_errors;
    Alcotest.test_case "add wraps" `Quick test_add_wraps;
    Alcotest.test_case "add_carry" `Quick test_add_carry;
    Alcotest.test_case "sub / neg" `Quick test_sub_neg;
    Alcotest.test_case "mul" `Quick test_mul;
    Alcotest.test_case "mul wide" `Quick test_mul_wide;
    Alcotest.test_case "div / rem" `Quick test_div_rem;
    Alcotest.test_case "Fig.1 non-associativity" `Quick
      test_fig1_nonassociativity;
    Alcotest.test_case "logic ops" `Quick test_logic;
    Alcotest.test_case "shifts" `Quick test_shifts;
    Alcotest.test_case "reductions" `Quick test_reduce;
    Alcotest.test_case "select / concat / repeat" `Quick test_select_concat;
    Alcotest.test_case "resize" `Quick test_resize;
    Alcotest.test_case "comparisons" `Quick test_compare ]
  @ qcheck_props
