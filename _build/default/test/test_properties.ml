(* Cross-module property tests: randomly generated expressions and
   programs exercise the semantic web — RTL simulator vs AIG synthesis,
   HWIR interpreter vs static elaboration, scoreboard policies, kernel
   determinism, and C-int semantics against the host's Int32. *)

open Dfv_bitvec
open Dfv_slm
open Dfv_cosim

let check_bool = Alcotest.check Alcotest.bool

(* --- random RTL expressions: simulator = synthesized AIG --------------- *)

(* Well-typed-by-construction expression generator at a fixed width. *)
let rec gen_expr st width depth : Dfv_rtl.Expr.t =
  let open Dfv_rtl.Expr in
  let leaf () =
    if Random.State.bool st then sig_ [| "a"; "b"; "c" |].(Random.State.int st 3)
    else of_bitvec (Bitvec.random st ~width)
  in
  if depth = 0 then leaf ()
  else begin
    let sub () = gen_expr st width (depth - 1) in
    match Random.State.int st 12 with
    | 0 -> sub () +: sub ()
    | 1 -> sub () -: sub ()
    | 2 -> sub () *: sub ()
    | 3 -> sub () &: sub ()
    | 4 -> sub () |: sub ()
    | 5 -> sub () ^: sub ()
    | 6 -> ~:(sub ())
    | 7 -> mux (bit (sub ()) (Random.State.int st width)) (sub ()) (sub ())
    | 8 ->
      let lo = Random.State.int st width in
      zext (slice (sub ()) ~hi:(width - 1) ~lo) width
    | 9 -> sext (slice (sub ()) ~hi:(width / 2) ~lo:0) width
    | 10 -> sub () <<: slice (sub ()) ~hi:2 ~lo:0
    | _ -> sub () >>+ slice (sub ()) ~hi:2 ~lo:0
  end

let eval_both expr inputs =
  let open Dfv_rtl in
  let width = 8 in
  let m =
    {
      (Netlist.empty "prop") with
      Netlist.inputs =
        [ { Netlist.port_name = "a"; port_width = width };
          { Netlist.port_name = "b"; port_width = width };
          { Netlist.port_name = "c"; port_width = width } ];
      outputs = [ ("o", expr) ];
    }
  in
  let d = Netlist.elaborate m in
  let sim = Sim.create d in
  let sim_out = List.assoc "o" (Sim.cycle sim inputs) in
  (* Through the AIG. *)
  let g = Dfv_aig.Aig.create () in
  let words =
    List.map
      (fun (n, v) -> (n, Dfv_aig.Word.inputs g (Bitvec.width v)))
      inputs
  in
  let outs, _ =
    Synth.build d ~g
      ~inputs:(fun n -> List.assoc n words)
      ~state:(fun _ -> assert false)
  in
  let bits =
    Array.concat (List.map (fun (_, v) -> Bitvec.to_bits v) inputs)
  in
  let values = Dfv_aig.Aig.simulate g bits in
  let aig_out = Dfv_aig.Word.to_bitvec g values (List.assoc "o" outs) in
  (sim_out, aig_out)

let prop_sim_equals_synth =
  QCheck.Test.make ~name:"random expr: simulator = synthesized AIG" ~count:120
    QCheck.(pair (int_bound 1_000_000) (int_bound 3))
    (fun (seed, depth) ->
      let st = Random.State.make [| seed; 1 |] in
      let expr = gen_expr st 8 (1 + depth) in
      let inputs =
        [ ("a", Bitvec.random st ~width:8);
          ("b", Bitvec.random st ~width:8);
          ("c", Bitvec.random st ~width:8) ]
      in
      let s, a = eval_both expr inputs in
      Bitvec.equal s a)

(* --- random HWIR programs: interpreter = static elaboration ------------- *)

let gen_hwir_expr st depth : Dfv_hwir.Ast.expr =
  let open Dfv_hwir.Ast in
  let rec go depth =
    let leaf () =
      if Random.State.bool st then var [| "x"; "y"; "z" |].(Random.State.int st 3)
      else u 8 (Random.State.int st 256)
    in
    if depth = 0 then leaf ()
    else begin
      let sub () = go (depth - 1) in
      match Random.State.int st 9 with
      | 0 -> sub () +^ sub ()
      | 1 -> sub () -^ sub ()
      | 2 -> sub () *^ sub ()
      | 3 -> sub () &^ sub ()
      | 4 -> sub () |^ sub ()
      | 5 -> sub () ^^ sub ()
      | 6 -> Cond (sub () <^ sub (), sub (), sub ())
      | 7 -> cast (uint 8) (Bitsel (sub (), 3 + Random.State.int st 4, 0))
      | _ -> sub () >>^ cast (uint 3) (sub ())
    end
  in
  go depth

let gen_hwir_program st : Dfv_hwir.Ast.program =
  let open Dfv_hwir.Ast in
  let nstmts = 2 + Random.State.int st 5 in
  let gen_stmt depth =
    let target = [| "x"; "y"; "z" |].(Random.State.int st 3) in
    if Random.State.int st 4 = 0 && depth > 0 then
      If
        ( gen_hwir_expr st 1 <^ gen_hwir_expr st 1,
          [ assign target (gen_hwir_expr st 2) ],
          if Random.State.bool st then
            [ assign [| "x"; "y"; "z" |].(Random.State.int st 3) (gen_hwir_expr st 2) ]
          else [] )
    else assign target (gen_hwir_expr st 2)
  in
  let body =
    List.init nstmts (fun _ -> gen_stmt 1)
    @ [ ret (gen_hwir_expr st 2) ]
  in
  {
    funcs =
      [ {
          fname = "f";
          params = [ ("x", uint 8); ("y", uint 8) ];
          ret = uint 8;
          locals = [ ("z", uint 8) ];
          body;
        } ];
    entry = "f";
  }

let prop_interp_equals_elab =
  QCheck.Test.make ~name:"random HWIR: interpreter = elaboration" ~count:80
    (QCheck.int_bound 1_000_000)
    (fun seed ->
      let open Dfv_hwir in
      let st = Random.State.make [| seed; 2 |] in
      let prog = gen_hwir_program st in
      Typecheck.check prog;
      let g = Dfv_aig.Aig.create () in
      let params, result = Elab.elaborate prog ~g in
      let w = match result with Elab.Word w -> w | Elab.Bank _ -> assert false in
      List.for_all
        (fun _ ->
          let x = Bitvec.random st ~width:8 and y = Bitvec.random st ~width:8 in
          let interp =
            Interp.run prog [ Interp.Vint x; Interp.Vint y ]
          in
          let bits = Array.append (Bitvec.to_bits x) (Bitvec.to_bits y) in
          let values = Dfv_aig.Aig.simulate g bits in
          let elab = Dfv_aig.Word.to_bitvec g values w in
          ignore params;
          Bitvec.equal (Interp.as_int interp) elab)
        (List.init 10 Fun.id))

(* --- scoreboard policies ------------------------------------------------ *)

let prop_in_order_accepts_delays =
  QCheck.Test.make ~name:"in-order scoreboard accepts any delays" ~count:200
    QCheck.(pair (list_of_size Gen.(int_range 1 20) (int_bound 255)) (int_bound 1000))
    (fun (values, seed) ->
      let st = Random.State.make [| seed; 3 |] in
      let sb = Scoreboard.create Scoreboard.In_order in
      List.iteri
        (fun i v -> Scoreboard.expect sb ~cycle:i (Bitvec.create ~width:8 v))
        values;
      let cycle = ref 0 in
      List.iter
        (fun v ->
          cycle := !cycle + 1 + Random.State.int st 5;
          Scoreboard.observe sb ~cycle:!cycle (Bitvec.create ~width:8 v))
        values;
      Scoreboard.ok (Scoreboard.report sb))

let prop_in_order_rejects_value_change =
  QCheck.Test.make ~name:"in-order scoreboard rejects a flipped value"
    ~count:200
    QCheck.(pair (list_of_size Gen.(int_range 1 20) (int_bound 255)) (int_bound 1000))
    (fun (values, seed) ->
      let st = Random.State.make [| seed; 4 |] in
      let flip_at = Random.State.int st (List.length values) in
      let sb = Scoreboard.create Scoreboard.In_order in
      List.iteri
        (fun i v -> Scoreboard.expect sb ~cycle:i (Bitvec.create ~width:8 v))
        values;
      List.iteri
        (fun i v ->
          let v = if i = flip_at then v lxor 1 else v in
          Scoreboard.observe sb ~cycle:i (Bitvec.create ~width:8 v))
        values;
      not (Scoreboard.ok (Scoreboard.report sb)))

let prop_out_of_order_accepts_permutation =
  QCheck.Test.make ~name:"tagged scoreboard accepts any permutation"
    ~count:200
    QCheck.(pair (list_of_size Gen.(int_range 1 16) (int_bound 255)) (int_bound 1000))
    (fun (values, seed) ->
      let st = Random.State.make [| seed; 5 |] in
      let tagged = List.mapi (fun i v -> (i land 0xf, v)) values in
      let sb = Scoreboard.create Scoreboard.Out_of_order in
      List.iteri
        (fun i (tag, v) ->
          Scoreboard.expect sb
            ~tag:(Bitvec.create ~width:4 tag)
            ~cycle:i (Bitvec.create ~width:8 v))
        tagged;
      (* Shuffle observations. *)
      let arr = Array.of_list tagged in
      for i = Array.length arr - 1 downto 1 do
        let j = Random.State.int st (i + 1) in
        let t = arr.(i) in
        arr.(i) <- arr.(j);
        arr.(j) <- t
      done;
      Array.iteri
        (fun i (tag, v) ->
          Scoreboard.observe sb
            ~tag:(Bitvec.create ~width:4 tag)
            ~cycle:i (Bitvec.create ~width:8 v))
        arr;
      Scoreboard.ok (Scoreboard.report sb))

(* --- kernel determinism -------------------------------------------------- *)

let kernel_trace seed =
  let k = Kernel.create () in
  let log = Buffer.create 64 in
  let st = Random.State.make [| seed |] in
  let f = Fifo.create k "f" ~capacity:2 in
  let clk = Clock.create k "clk" ~period:3 in
  Kernel.thread k ~name:"producer" (fun () ->
      for i = 1 to 10 do
        Kernel.wait_time k (1 + Random.State.int st 4);
        Fifo.write f i;
        Buffer.add_string log (Printf.sprintf "w%d@%d;" i (Kernel.now k))
      done);
  Kernel.thread k ~name:"consumer" (fun () ->
      for _ = 1 to 10 do
        Clock.wait_posedge clk;
        let v = Fifo.read f in
        Buffer.add_string log (Printf.sprintf "r%d@%d;" v (Kernel.now k))
      done);
  Kernel.run ~until:500 k;
  Buffer.contents log

let prop_kernel_deterministic =
  QCheck.Test.make ~name:"kernel runs are deterministic" ~count:50
    (QCheck.int_bound 1_000_000)
    (fun seed -> String.equal (kernel_trace seed) (kernel_trace seed))

(* --- Cint vs host Int32 --------------------------------------------------- *)

let prop_cint_matches_int32 =
  QCheck.Test.make ~name:"Cint I32 ops match host Int32" ~count:1000
    QCheck.(triple int int (int_bound 5))
    (fun (x, y, op) ->
      let a = Cint.make Cint.I32 x and b = Cint.make Cint.I32 y in
      let ia = Int32.of_int x and ib = Int32.of_int y in
      let pairs =
        [ (Cint.add, Int32.add); (Cint.sub, Int32.sub); (Cint.mul, Int32.mul);
          (Cint.logand, Int32.logand); (Cint.logor, Int32.logor);
          (Cint.logxor, Int32.logxor) ]
      in
      let cf, if_ = List.nth pairs op in
      Cint.reset_overflow_count ();
      Int64.equal (Cint.value_i64 (cf a b)) (Int64.of_int32 (if_ ia ib)))

let suite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_sim_equals_synth; prop_interp_equals_elab;
      prop_in_order_accepts_delays; prop_in_order_rejects_value_change;
      prop_out_of_order_accepts_permutation; prop_kernel_deterministic;
      prop_cint_matches_int32 ]
