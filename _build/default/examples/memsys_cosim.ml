(* Interface-timing inconsistency (Section 3.2) on a memory subsystem.

   The SLM is a zero-delay array.  The RTL ladder: a fixed-latency
   pipelined memory, then a direct-mapped cache with hit-under-miss in
   front of a slow backing store.  We drive the same tagged requests
   through both and show:
   - hits are fast, misses slow (latency is a function of cache state);
   - completions REORDER under the cache;
   - an exact-cycle or in-order scoreboard rejects the (correct!) cached
     RTL, while the tagged out-of-order scoreboard aligns it cleanly.

   Run with: dune exec examples/memsys_cosim.exe *)

open Dfv_bitvec
open Dfv_designs
open Dfv_cosim

let section title = Printf.printf "\n=== %s ===\n" title

let requests =
  [ { Memsys.req_tag = 0; op = Memsys.Write (0x10, 0xA1) };
    { Memsys.req_tag = 1; op = Memsys.Write (0x23, 0xB2) };
    { Memsys.req_tag = 2; op = Memsys.Read 0x10 } (* miss: fills line *);
    { Memsys.req_tag = 3; op = Memsys.Read 0x10 } (* hit *);
    { Memsys.req_tag = 4; op = Memsys.Read 0x55 } (* miss *);
    { Memsys.req_tag = 5; op = Memsys.Read 0x10 } (* hit under miss! *);
    { Memsys.req_tag = 6; op = Memsys.Read 0x23 } (* miss *);
    { Memsys.req_tag = 7; op = Memsys.Read 0x23 } (* hit *) ]

let describe = function
  | Memsys.Read a -> Printf.sprintf "read  %02x" a
  | Memsys.Write (a, d) -> Printf.sprintf "write %02x <- %02x" a d

let () =
  let c = Memsys.default_config in

  section "1. The zero-delay SLM processes requests instantly, in order";
  let slm = Memsys.Slm.create c in
  let golden = Memsys.Slm.execute_all slm requests in
  List.iter2
    (fun r (tag, data) ->
      Printf.printf "  tag %d: %-16s -> %02x\n" tag (describe r.Memsys.op) data)
    requests golden;

  section "2. Fixed-latency RTL: same order, constant delay";
  let completions, cycles =
    Txn_engine.run ~rtl:(Memsys.rtl_simple c)
      ~iface:(Memsys.iface c ~ready:false)
      ~requests:(Memsys.to_engine_requests c requests)
      ()
  in
  List.iter
    (fun (cp : Txn_engine.completion) ->
      Printf.printf "  cycle %2d: tag %d -> %02x\n" cp.Txn_engine.c_cycle
        (Bitvec.to_int cp.Txn_engine.c_tag)
        (Bitvec.to_int cp.Txn_engine.c_data))
    completions;
  Printf.printf "  (%d cycles total)\n" cycles;

  section "3. Cached RTL: latency depends on cache state, and hits overtake misses";
  let completions, cycles =
    Txn_engine.run ~rtl:(Memsys.rtl_cached c)
      ~iface:(Memsys.iface c ~ready:true)
      ~requests:(Memsys.to_engine_requests c requests)
      ()
  in
  List.iter
    (fun (cp : Txn_engine.completion) ->
      Printf.printf "  cycle %2d: tag %d -> %02x\n" cp.Txn_engine.c_cycle
        (Bitvec.to_int cp.Txn_engine.c_tag)
        (Bitvec.to_int cp.Txn_engine.c_data))
    completions;
  Printf.printf "  (%d cycles total; note tag 5 completing before tag 4)\n" cycles;

  section "4. Scoreboard policies (the Section 3.2 alignment problem)";
  let run_policy policy name uses_tag =
    let sb = Scoreboard.create policy in
    List.iteri
      (fun i (tag, data) ->
        let tag = if uses_tag then Some (Bitvec.create ~width:c.Memsys.tag_width tag) else None in
        Scoreboard.expect ?tag sb ~cycle:i (Bitvec.create ~width:c.Memsys.data_width data))
      golden;
    List.iter
      (fun (cp : Txn_engine.completion) ->
        let tag = if uses_tag then Some cp.Txn_engine.c_tag else None in
        Scoreboard.observe ?tag sb ~cycle:cp.Txn_engine.c_cycle cp.Txn_engine.c_data)
      completions;
    let r = Scoreboard.report sb in
    Printf.printf "  %-14s: %s (%d matched, %d mismatches, %d unconsumed)\n" name
      (if Scoreboard.ok r then "PASS" else "FAIL")
      r.Scoreboard.matched
      (List.length r.Scoreboard.mismatches)
      r.Scoreboard.unconsumed;
    r
  in
  let _ = run_policy Scoreboard.Exact_cycle "exact-cycle" false in
  let _ = run_policy Scoreboard.In_order "in-order" false in
  let r = run_policy Scoreboard.Out_of_order "out-of-order" true in

  section "5. Latency histogram from the tagged scoreboard (Fig. 2 shape)";
  let buckets = Hashtbl.create 8 in
  List.iter
    (fun (cp : Txn_engine.completion) ->
      (* latency relative to issue order is approximated by completion
         cycle minus tag issue index *)
      ignore cp)
    completions;
  List.iter
    (fun l ->
      Hashtbl.replace buckets l (1 + Option.value ~default:0 (Hashtbl.find_opt buckets l)))
    r.Scoreboard.latencies;
  Hashtbl.fold (fun l n acc -> (l, n) :: acc) buckets []
  |> List.sort compare
  |> List.iter (fun (l, n) ->
         Printf.printf "  latency %3d cycles: %s\n" l (String.make n '#'));
  print_endline
    "\nThe same RTL is correct under a transactor that understands tags, and\n\
     'wrong' under one that assumes SLM timing -- exactly the paper's point.";

  section "6. The abstraction ladder above: one memory function, three TLM sockets";
  (* Section 4.4: keep computation and communication orthogonal.  The
     same read/write function serves the untimed architectural model, the
     loosely-timed software-prototyping model, and a queued model with
     visible contention. *)
  let open Dfv_slm in
  let k = Kernel.create () in
  let mem = Array.make 256 0 in
  let serve = function
    | Memsys.Read a -> mem.(a land 0xff)
    | Memsys.Write (a, d) ->
      mem.(a land 0xff) <- d land 0xff;
      d land 0xff
  in
  let untimed = Tlm.untimed serve in
  let loose = Tlm.loosely_timed k ~latency:8 serve in
  let queued = Tlm.queued k ~name:"mem" ~depth:2 ~service_time:8 serve in
  let ops = List.map (fun r -> r.Memsys.op) requests in
  let r_untimed = List.map (Tlm.transport untimed) ops in
  let r_loose = ref [] and r_queued = ref [] in
  Kernel.thread k ~name:"sw-prototype" (fun () ->
      Array.fill mem 0 256 0;
      r_loose := List.map (Tlm.transport loose) ops);
  Kernel.run k;
  let t_loose = Kernel.now k in
  Kernel.thread k ~name:"contended" (fun () ->
      Array.fill mem 0 256 0;
      r_queued := List.map (Tlm.transport queued) ops);
  Kernel.run k;
  Printf.printf
    "  untimed       : %d transactions at t=0\n\
    \  loosely timed : same data %s, done at t=%d\n\
    \  queued        : same data %s, done at t=%d (server serializes)\n"
    (Tlm.transactions untimed)
    (if !r_loose = r_untimed then "(identical)" else "(DIFFER!)")
    t_loose
    (if !r_queued = r_untimed then "(identical)" else "(DIFFER!)")
    (Kernel.now k)
