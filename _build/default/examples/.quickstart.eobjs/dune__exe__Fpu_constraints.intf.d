examples/fpu_constraints.mli:
