examples/memsys_cosim.mli:
