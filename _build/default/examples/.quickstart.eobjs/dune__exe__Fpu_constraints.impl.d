examples/fpu_constraints.ml: Checker Dfv_bitvec Dfv_designs Dfv_hwir Dfv_sec Dfv_softfloat F32 Hashtbl List Minifloat Option Printf Random
