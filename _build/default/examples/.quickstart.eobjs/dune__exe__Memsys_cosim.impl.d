examples/memsys_cosim.ml: Array Bitvec Dfv_bitvec Dfv_cosim Dfv_designs Dfv_slm Hashtbl Kernel List Memsys Option Printf Scoreboard String Tlm Txn_engine
