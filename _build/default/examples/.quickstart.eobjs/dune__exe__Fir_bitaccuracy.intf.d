examples/fir_bitaccuracy.mli:
