examples/fir_bitaccuracy.ml: Array Checker Dfv_bitvec Dfv_designs Dfv_hwir Dfv_sec Fir List Printf Random String
