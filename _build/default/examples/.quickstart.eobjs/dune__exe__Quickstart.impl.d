examples/quickstart.ml: Dfv_behsyn Dfv_bitvec Dfv_core Dfv_designs Dfv_hwir Dfv_rtl Dfv_sec Expr Flow Format Gcd List Netlist Pair Printf String
