examples/image_pipeline.ml: Array Checker Conv_image Dfv_bitvec Dfv_cosim Dfv_designs Dfv_hwir Dfv_sec Image_chain List Printf Random String
