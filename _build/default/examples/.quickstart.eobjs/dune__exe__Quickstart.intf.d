examples/quickstart.mli:
