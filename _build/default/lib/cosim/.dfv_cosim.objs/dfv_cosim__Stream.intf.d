lib/cosim/stream.mli: Dfv_bitvec Dfv_rtl
