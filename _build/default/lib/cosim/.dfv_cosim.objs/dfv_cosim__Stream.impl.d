lib/cosim/stream.ml: Array Dfv_bitvec Dfv_rtl Hashtbl List Option Printf
