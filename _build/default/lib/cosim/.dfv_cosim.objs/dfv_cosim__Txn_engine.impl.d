lib/cosim/txn_engine.ml: Dfv_bitvec Dfv_rtl List Printf String
