lib/cosim/scoreboard.ml: Dfv_bitvec Hashtbl List Queue
