lib/cosim/txn_engine.mli: Dfv_bitvec Dfv_rtl
