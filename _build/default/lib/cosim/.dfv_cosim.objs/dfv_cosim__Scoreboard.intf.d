lib/cosim/scoreboard.mli: Dfv_bitvec
