(** Behavioral synthesis of conditioned HWIR into sequential RTL.

    Section 4.3 of the paper: following the model-conditioning
    guidelines makes an SLM usable not only for sequential equivalence
    checking but also for "automated generation of RTL via behavioral
    synthesis tools".  This module is that tool, in miniature: it
    compiles a conditioned HWIR program into an FSM-plus-datapath RTL
    module — one statement per state, loops as genuine FSM cycles (not
    unrolled), scalars as registers, array locals as memories.

    The generated block follows the start/done protocol of the
    hand-written sequential designs in this repository:

    - inputs: [start] (1 bit) and one port per scalar entry parameter;
    - outputs: [result] and [done_] (1 bit);
    - on [start] the parameters are latched, locals cleared and the FSM
      launched; [done_] rises when the program returns and stays up.

    Restrictions (raising {!Not_synthesizable}): the entry function must
    be the only function reached (no calls — inline first), parameters
    and the result must be scalars, and of course the program must obey
    the Section 4.3 guidelines ([while]/[malloc]/aliasing/extern are
    rejected, as in {!Dfv_hwir.Elab}).  Array locals become memories
    initialized at reset, so a generated block runs one transaction per
    reset — exactly the transaction SEC checks.

    The point of the exercise: {!spec} produces the transaction mapping
    for the generated block, so the synthesized RTL is immediately
    checked against its own source SLM by {!Dfv_sec.Checker} — the
    correct-by-construction claim is not taken on faith. *)

exception Not_synthesizable of string

val cycle_bound : Dfv_hwir.Ast.program -> int
(** A static worst-case cycle count for one transaction of the
    synthesized FSM (loops contribute their static bounds). *)

val synthesize : ?name:string -> Dfv_hwir.Ast.program -> Dfv_rtl.Netlist.t
(** Compile the program's entry function. *)

val spec : Dfv_hwir.Ast.program -> Dfv_sec.Spec.t
(** The transaction specification aligning the program (as the SLM) with
    its synthesized RTL: parameters held on their ports, [start] pulsed
    at cycle 0, [result] compared at the worst-case cycle. *)
