lib/behsyn/behsyn.mli: Dfv_hwir Dfv_rtl Dfv_sec
