lib/behsyn/behsyn.ml: Array Dfv_bitvec Dfv_hwir Dfv_rtl Dfv_sec Hashtbl List Printf
