module Bitvec = Dfv_bitvec.Bitvec
module A = Dfv_hwir.Ast
module E = Dfv_rtl.Expr
module Netlist = Dfv_rtl.Netlist
module Spec = Dfv_sec.Spec

exception Not_synthesizable of string

let fail fmt = Printf.ksprintf (fun m -> raise (Not_synthesizable m)) fmt

(* --- static cycle bound --------------------------------------------------- *)

let rec bound_stmts stmts = List.fold_left (fun acc s -> acc + bound_stmt s) 0 stmts

and bound_stmt = function
  | A.Assign _ -> 1
  | A.If (_, t, f) -> 1 + max (bound_stmts t) (bound_stmts f)
  | A.For { count; body; _ } ->
    (* init + per-iteration (test + body + incr) + final test *)
    1 + (count * (2 + bound_stmts body)) + 1
  | A.Bounded_while { max_iter; body; _ } ->
    1 + (max_iter * (2 + bound_stmts body)) + 1
  | A.Return _ -> 1
  | A.While _ -> fail "data-dependent loop cannot be synthesized"
  | A.Alloc _ -> fail "dynamic allocation cannot be synthesized"
  | A.Alias _ -> fail "pointer aliasing cannot be synthesized"
  | A.Extern_call _ -> fail "external call cannot be synthesized"

let entry_of p =
  match A.find_func p p.A.entry with
  | Some f -> f
  | None -> fail "entry function %s not found" p.A.entry

let cycle_bound p = bound_stmts (entry_of p).A.body + 1

(* --- expression translation ------------------------------------------------ *)

(* Variable environment: scalar name -> (width, signed);
   array name -> (element width, signed, size). *)
type env = {
  scalars : (string, int * bool) Hashtbl.t;
  arrays : (string, int * bool * int) Hashtbl.t;
}

let scalar env n =
  match Hashtbl.find_opt env.scalars n with
  | Some ws -> ws
  | None -> fail "unknown scalar %s" n

(* Translate an HWIR expression to an RTL expression over the datapath
   registers; returns the expression and its signedness. *)
let rec tr env (e : A.expr) : E.t * bool =
  match e with
  | A.Int (bv, signed) -> (E.of_bitvec bv, signed)
  | A.Bool b -> (E.const ~width:1 (if b then 1 else 0), false)
  | A.Var n ->
    let _, signed = scalar env n in
    (E.sig_ n, signed)
  | A.Index (a, i) -> (
    match Hashtbl.find_opt env.arrays a with
    | Some (_, signed, size) ->
      let ei, _ = tr env i in
      (* Memory addresses are sized by the elaborated netlist; resize the
         index to the address width with zero extension (indices are
         unsigned by typecheck). *)
      let aw =
        let rec go k = if 1 lsl k >= size then k else go (k + 1) in
        max 1 (go 0)
      in
      (E.mem_read a (resize_u ei (width_of env i) aw), signed)
    | None -> fail "unknown array %s" a)
  | A.Unop (A.Not, a) ->
    let ea, sa = tr env a in
    (E.( ~: ) ea, sa)
  | A.Unop (A.Neg, a) ->
    let ea, sa = tr env a in
    (E.negate ea, sa)
  | A.Unop (A.Lnot, a) ->
    let ea, _ = tr env a in
    (E.( ~: ) ea, false)
  | A.Binop (op, a, b) -> (
    let ea, sa = tr env a in
    let eb, _ = tr env b in
    let open E in
    match op with
    | A.Add -> (ea +: eb, sa)
    | A.Sub -> (ea -: eb, sa)
    | A.Mul -> (ea *: eb, sa)
    | A.Div -> ((if sa then Binop (Sdiv, ea, eb) else ea /: eb), sa)
    | A.Rem -> ((if sa then Binop (Srem, ea, eb) else ea %: eb), sa)
    | A.And -> (ea &: eb, sa)
    | A.Or -> (ea |: eb, sa)
    | A.Xor -> (ea ^: eb, sa)
    | A.Shl -> (ea <<: eb, sa)
    | A.Shr -> ((if sa then ea >>+ eb else ea >>: eb), sa)
    | A.Eq -> (ea ==: eb, false)
    | A.Ne -> (ea <>: eb, false)
    | A.Lt -> ((if sa then ea <+ eb else ea <: eb), false)
    | A.Le -> ((if sa then ea <=+ eb else ea <=: eb), false)
    | A.Land -> (ea &: eb, false)
    | A.Lor -> (ea |: eb, false))
  | A.Cond (c, a, b) ->
    let ec, _ = tr env c in
    let ea, sa = tr env a in
    let eb, _ = tr env b in
    (E.mux ec ea eb, sa)
  | A.Cast (A.Tint { width; signed }, a) ->
    let ea, sa = tr env a in
    let wa = width_of env a in
    let e =
      if width = wa then ea
      else if width < wa then E.slice ea ~hi:(width - 1) ~lo:0
      else if sa then E.sext ea width
      else E.zext ea width
    in
    (e, signed)
  | A.Cast (A.Tarray _, _) -> fail "array cast"
  | A.Bitsel (a, hi, lo) ->
    let ea, _ = tr env a in
    (E.slice ea ~hi ~lo, false)
  | A.Call (f, _) ->
    fail "call to %s: inline calls before behavioral synthesis" f

and width_of env (e : A.expr) : int =
  match e with
  | A.Int (bv, _) -> Bitvec.width bv
  | A.Bool _ -> 1
  | A.Var n -> fst (scalar env n)
  | A.Index (a, _) -> (
    match Hashtbl.find_opt env.arrays a with
    | Some (w, _, _) -> w
    | None -> fail "unknown array %s" a)
  | A.Unop ((A.Not | A.Neg), a) -> width_of env a
  | A.Unop (A.Lnot, _) -> 1
  | A.Binop ((A.Eq | A.Ne | A.Lt | A.Le | A.Land | A.Lor), _, _) -> 1
  | A.Binop (_, a, _) -> width_of env a
  | A.Cond (_, a, _) -> width_of env a
  | A.Cast (A.Tint { width; _ }, _) -> width
  | A.Cast (A.Tarray _, _) -> fail "array cast"
  | A.Bitsel (_, hi, lo) -> hi - lo + 1
  | A.Call _ -> fail "call in expression"

and resize_u e w target =
  if w = target then e
  else if w > target then E.slice e ~hi:(target - 1) ~lo:0
  else E.zext e target

(* --- FSM construction ------------------------------------------------------ *)

type state = {
  mutable writes : (string * A.expr) list; (* scalar register writes *)
  mutable mem_writes : (string * A.expr * A.expr) list; (* array, idx, value *)
  mutable next : next_state;
}

and next_state = Goto of int | Branch of A.expr * int * int | Halt

type fsm = { mutable states : state array; mutable n : int }

let new_state fsm =
  if fsm.n = Array.length fsm.states then begin
    let a =
      Array.make (2 * fsm.n) { writes = []; mem_writes = []; next = Halt }
    in
    Array.blit fsm.states 0 a 0 fsm.n;
    fsm.states <- a
  end;
  fsm.states.(fsm.n) <- { writes = []; mem_writes = []; next = Halt };
  fsm.n <- fsm.n + 1;
  fsm.n - 1

(* Compile [stmts] so control continues at state [k]; returns the entry
   state.  Fresh loop-guard counters are appended to [counters]. *)
let rec compile fsm counters result_name stmts k =
  List.fold_right (fun st k -> compile_stmt fsm counters result_name st k) stmts k

and compile_stmt fsm counters result_name (st : A.stmt) k =
  match st with
  | A.Assign (lv, e) ->
    let s = new_state fsm in
    (match lv with
    | A.Lvar n -> fsm.states.(s).writes <- [ (n, e) ]
    | A.Lindex (a, i) -> fsm.states.(s).mem_writes <- [ (a, i, e) ]);
    fsm.states.(s).next <- Goto k;
    s
  | A.If (c, t, f) ->
    let s = new_state fsm in
    let te = compile fsm counters result_name t k in
    let fe = compile fsm counters result_name f k in
    fsm.states.(s).next <- Branch (c, te, fe);
    s
  | A.For { ivar; count; body } ->
    let open A in
    let init = new_state fsm in
    let test = new_state fsm in
    let incr = new_state fsm in
    let body_entry = compile fsm counters result_name body incr in
    fsm.states.(init).writes <- [ (ivar, u 32 0) ];
    fsm.states.(init).next <- Goto test;
    fsm.states.(test).next <- Branch (var ivar <^ u 32 count, body_entry, k);
    fsm.states.(incr).writes <- [ (ivar, var ivar +^ u 32 1) ];
    fsm.states.(incr).next <- Goto test;
    init
  | A.Bounded_while { cond; max_iter; body } ->
    let open A in
    let guard = Printf.sprintf "__bw%d" (List.length !counters) in
    counters := guard :: !counters;
    let init = new_state fsm in
    let test = new_state fsm in
    let incr = new_state fsm in
    let body_entry = compile fsm counters result_name body incr in
    fsm.states.(init).writes <- [ (guard, u 32 0) ];
    fsm.states.(init).next <- Goto test;
    fsm.states.(test).next <-
      Branch ((var guard <^ u 32 max_iter) &&^ cond, body_entry, k);
    fsm.states.(incr).writes <- [ (guard, var guard +^ u 32 1) ];
    fsm.states.(incr).next <- Goto test;
    init
  | A.Return e ->
    let s = new_state fsm in
    fsm.states.(s).writes <- [ (result_name, e) ];
    fsm.states.(s).next <- Halt;
    s
  | A.While _ -> fail "data-dependent loop cannot be synthesized"
  | A.Alloc _ -> fail "dynamic allocation cannot be synthesized"
  | A.Alias _ -> fail "pointer aliasing cannot be synthesized"
  | A.Extern_call (f, _) -> fail "external call to %s cannot be synthesized" f

(* --- top level -------------------------------------------------------------- *)

let result_name = "__result"

let synthesize ?name (p : A.program) =
  Dfv_hwir.Typecheck.check p;
  let fn = entry_of p in
  (* No calls anywhere in the body (checked during translation anyway,
     but give the friendly message early). *)
  (match fn.A.ret with
  | A.Tint _ -> ()
  | A.Tarray _ -> fail "array results are not supported");
  List.iter
    (fun (n, ty) ->
      match ty with
      | A.Tint _ -> ()
      | A.Tarray _ -> fail "array parameter %s is not supported" n)
    fn.A.params;
  (* Build the FSM. *)
  let fsm = { states = Array.make 16 { writes = []; mem_writes = []; next = Halt }; n = 0 } in
  let counters = ref [] in
  let entry = compile fsm counters result_name fn.A.body (-1) in
  (* Continuing "past the end" (k = -1) would mean falling off the
     function; typecheck guarantees a Return on every path, so -1 is
     unreachable, but wire it to a halting sink for safety. *)
  let halt_sink = new_state fsm in
  fsm.states.(halt_sink).next <- Halt;
  let fix = function
    | Goto -1 -> Goto halt_sink
    | Branch (c, -1, e) -> Branch (c, halt_sink, e)
    | Branch (c, t, -1) -> Branch (c, t, halt_sink)
    | n -> n
  in
  for i = 0 to fsm.n - 1 do
    fsm.states.(i).next <- fix fsm.states.(i).next
  done;
  let nstates = fsm.n in
  let done_state = nstates (* a virtual pc value meaning "halted" *) in
  let pc_w =
    let rec go k = if 1 lsl k > done_state then k else go (k + 1) in
    max 1 (go 0)
  in
  (* Environment for expression translation. *)
  let env = { scalars = Hashtbl.create 16; arrays = Hashtbl.create 4 } in
  List.iter
    (fun (n, ty) ->
      match ty with
      | A.Tint { width; signed } -> Hashtbl.replace env.scalars n (width, signed)
      | A.Tarray _ -> ())
    fn.A.params;
  List.iter
    (fun (n, ty) ->
      match ty with
      | A.Tint { width; signed } -> Hashtbl.replace env.scalars n (width, signed)
      | A.Tarray (A.Tint { width; signed }, size) ->
        Hashtbl.replace env.arrays n (width, signed, size)
      | A.Tarray (A.Tarray _, _) -> fail "nested array local")
    fn.A.locals;
  List.iter (fun g -> Hashtbl.replace env.scalars g (32, false)) !counters;
  (match fn.A.ret with
  | A.Tint { width; signed } -> Hashtbl.replace env.scalars result_name (width, signed)
  | A.Tarray _ -> assert false);
  (* For-loop index variables need registers too: collect every scalar
     written by any state that is not yet declared. *)
  Array.iteri
    (fun i st ->
      if i < nstates then
        List.iter
          (fun (n, _) ->
            if not (Hashtbl.mem env.scalars n) then
              (* Loop index: uint32 by the HWIR For rule. *)
              Hashtbl.replace env.scalars n (32, false))
          st.writes)
    fsm.states;
  (* RTL pieces. *)
  let open E in
  let pc = sig_ "__pc" in
  let busy = sig_ "__busy" in
  let accept = sig_ "start" &: ~:busy in
  let at i = busy &: (pc ==: const ~width:pc_w i) in
  (* pc next. *)
  let pc_next =
    let rec build i =
      if i >= nstates then const ~width:pc_w done_state
      else begin
        let this =
          match fsm.states.(i).next with
          | Goto j -> const ~width:pc_w j
          | Halt -> const ~width:pc_w done_state
          | Branch (c, t, f) ->
            let ec, _ = tr env c in
            mux ec (const ~width:pc_w t) (const ~width:pc_w f)
        in
        mux (pc ==: const ~width:pc_w i) this (build (i + 1))
      end
    in
    mux accept (const ~width:pc_w entry) (mux busy (build 0) pc)
  in
  (* Scalar register next values. *)
  let writes_to n =
    let acc = ref [] in
    for i = nstates - 1 downto 0 do
      List.iter
        (fun (m, e) -> if m = n then acc := (i, e) :: !acc)
        fsm.states.(i).writes
    done;
    !acc
  in
  let param_names = List.map fst fn.A.params in
  let scalar_regs =
    Hashtbl.fold
      (fun n (w, _) acc ->
        let cur = sig_ n in
        let base =
          if List.mem n param_names then mux accept (sig_ ("in_" ^ n)) cur
          else if n = result_name then cur
          else mux accept (const ~width:w 0) cur
        in
        let next =
          List.fold_left
            (fun acc (i, e) ->
              let ee, _ = tr env e in
              mux (at i) ee acc)
            base (writes_to n)
        in
        Netlist.reg ~name:n ~width:w next :: acc)
      env.scalars []
  in
  (* Memories. *)
  let mems =
    Hashtbl.fold
      (fun n (w, _, size) acc ->
        let ports = ref [] in
        Array.iteri
          (fun i st ->
            if i < nstates then
              List.iter
                (fun (m, idx, v) ->
                  if m = n then begin
                    let ei, _ = tr env idx in
                    let ev, _ = tr env v in
                    let aw =
                      let rec go k = if 1 lsl k >= size then k else go (k + 1) in
                      max 1 (go 0)
                    in
                    ports :=
                      {
                        Netlist.wr_enable = at i;
                        wr_addr = resize_u ei (width_of env idx) aw;
                        wr_data = ev;
                      }
                      :: !ports
                  end)
                st.mem_writes)
          fsm.states;
        {
          Netlist.mem_name = n;
          word_width = w;
          mem_size = size;
          writes = List.rev !ports;
          mem_init = None;
        }
        :: acc)
      env.arrays []
  in
  let module_name =
    match name with Some n -> n | None -> "behsyn_" ^ fn.A.fname
  in
  {
    (Netlist.empty module_name) with
    Netlist.inputs =
      { Netlist.port_name = "start"; port_width = 1 }
      :: List.map
           (fun (n, ty) ->
             { Netlist.port_name = "in_" ^ n; port_width = A.ty_width ty })
           fn.A.params;
    regs =
      Netlist.reg ~name:"__busy" ~width:1 (busy |: sig_ "start")
      :: Netlist.reg ~name:"__pc" ~width:pc_w pc_next
      :: scalar_regs;
    mems;
    outputs =
      [ ("result", sig_ result_name);
        ("done_", busy &: (pc ==: const ~width:pc_w done_state)) ];
  }

let spec (p : A.program) =
  let fn = entry_of p in
  let cycles = cycle_bound p + 2 in
  {
    Spec.rtl_cycles = cycles;
    drives =
      ( "start",
        Spec.At
          (fun c -> Spec.Const (Bitvec.create ~width:1 (if c = 0 then 1 else 0)))
      )
      :: List.map
           (fun (n, _) -> ("in_" ^ n, Spec.At (fun _ -> Spec.Param n)))
           fn.A.params;
    checks =
      [ { Spec.rtl_port = "result"; at_cycle = cycles - 1; expect = Spec.Result } ];
    constraints = [];
  }
