type ('req, 'rsp) kind =
  | Untimed of ('req -> 'rsp)
  | Loosely_timed of { kernel : Kernel.t; latency : int; f : 'req -> 'rsp }
  | Queued of {
      kernel : Kernel.t;
      requests : ('req * 'rsp option ref * Kernel.event) Fifo.t;
    }

type ('req, 'rsp) target = {
  kind : ('req, 'rsp) kind;
  mutable count : int;
}

let untimed f = { kind = Untimed f; count = 0 }

let loosely_timed kernel ~latency f =
  if latency < 1 then invalid_arg "Tlm.loosely_timed: latency must be >= 1";
  { kind = Loosely_timed { kernel; latency; f }; count = 0 }

let queued kernel ~name ~depth ~service_time f =
  if service_time < 1 then invalid_arg "Tlm.queued: service_time must be >= 1";
  let requests = Fifo.create kernel (name ^ ".q") ~capacity:depth in
  Kernel.thread kernel ~name:(name ^ ".server") (fun () ->
      while true do
        let req, cell, done_ev = Fifo.read requests in
        Kernel.wait_time kernel service_time;
        cell := Some (f req);
        Kernel.notify done_ev
      done);
  { kind = Queued { kernel; requests }; count = 0 }

let transport t req =
  t.count <- t.count + 1;
  match t.kind with
  | Untimed f -> f req
  | Loosely_timed { kernel; latency; f } ->
    Kernel.wait_time kernel latency;
    f req
  | Queued { kernel; requests } ->
    let cell = ref None in
    let done_ev = Kernel.event kernel "tlm.done" in
    Fifo.write requests (req, cell, done_ev);
    Kernel.wait_event done_ev;
    (match !cell with
    | Some rsp -> rsp
    | None -> failwith "Tlm.transport: server signalled before responding")

let transactions t = t.count
