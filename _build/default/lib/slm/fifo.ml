type 'a t = {
  fifo_name : string;
  cap : int;
  items : 'a Queue.t;
  written_ev : Kernel.event;
  read_ev : Kernel.event;
}

let create k name ~capacity =
  if capacity < 1 then invalid_arg "Fifo.create: capacity must be >= 1";
  {
    fifo_name = name;
    cap = capacity;
    items = Queue.create ();
    written_ev = Kernel.event k (name ^ ".written");
    read_ev = Kernel.event k (name ^ ".read");
  }

let length f = Queue.length f.items
let capacity f = f.cap
let name f = f.fifo_name
let data_written f = f.written_ev
let data_read f = f.read_ev

let try_write f v =
  if Queue.length f.items >= f.cap then false
  else begin
    Queue.push v f.items;
    Kernel.notify f.written_ev;
    true
  end

let try_read f =
  match Queue.pop f.items with
  | v ->
    Kernel.notify f.read_ev;
    Some v
  | exception Queue.Empty -> None

let rec write f v =
  if try_write f v then ()
  else begin
    Kernel.wait_event f.read_ev;
    write f v
  end

let rec read f =
  match try_read f with
  | Some v -> v
  | None ->
    Kernel.wait_event f.written_ev;
    read f
