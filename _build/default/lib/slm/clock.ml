type t = {
  kernel : Kernel.t;
  clk_period : int;
  edge : Kernel.event;
  mutable nedges : int;
}

let create k name ~period =
  if period < 1 then invalid_arg "Clock.create: period must be >= 1";
  let t =
    { kernel = k; clk_period = period; edge = Kernel.event k (name ^ ".posedge"); nedges = 0 }
  in
  Kernel.thread k ~name:(name ^ ".driver") (fun () ->
      while true do
        Kernel.wait_time k period;
        t.nedges <- t.nedges + 1;
        Kernel.notify t.edge
      done);
  t

let posedge t = t.edge
let wait_posedge t = Kernel.wait_event t.edge
let cycles t = t.nedges
let period t = t.clk_period
