type 'a t = {
  kernel : Kernel.t;
  sig_name : string;
  equal : 'a -> 'a -> bool;
  mutable cur : 'a;
  mutable nxt : 'a;
  mutable update_requested : bool;
  changed_ev : Kernel.event;
}

let create ?(equal = ( = )) k name ~init =
  {
    kernel = k;
    sig_name = name;
    equal;
    cur = init;
    nxt = init;
    update_requested = false;
    changed_ev = Kernel.event k (name ^ ".changed");
  }

let read s = s.cur

let commit s () =
  s.update_requested <- false;
  if not (s.equal s.cur s.nxt) then begin
    s.cur <- s.nxt;
    Kernel.notify s.changed_ev
  end

let write s v =
  s.nxt <- v;
  if not s.update_requested then begin
    s.update_requested <- true;
    Kernel.request_update s.kernel (commit s)
  end

let changed s = s.changed_ev
let name s = s.sig_name
