lib/slm/signal.ml: Kernel
