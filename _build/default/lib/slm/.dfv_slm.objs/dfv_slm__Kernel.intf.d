lib/slm/kernel.mli:
