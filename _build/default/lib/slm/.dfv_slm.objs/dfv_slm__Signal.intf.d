lib/slm/signal.mli: Kernel
