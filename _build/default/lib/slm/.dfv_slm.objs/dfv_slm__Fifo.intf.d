lib/slm/fifo.mli: Kernel
