lib/slm/kernel.ml: Effect Hashtbl List Queue
