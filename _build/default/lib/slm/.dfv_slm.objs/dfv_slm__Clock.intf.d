lib/slm/clock.mli: Kernel
