lib/slm/tlm.mli: Kernel
