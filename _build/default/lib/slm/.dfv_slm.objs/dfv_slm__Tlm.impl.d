lib/slm/tlm.ml: Fifo Kernel
