lib/slm/fifo.ml: Kernel Queue
