lib/slm/clock.ml: Kernel
