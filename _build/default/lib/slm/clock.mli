(** Simulation clocks for cycle-approximate SLMs.

    A clock fires a positive-edge event every [period] ticks (first edge
    at [t = period]).  Clocked SLM processes are threads that
    {!wait_posedge} each iteration — the cycle-approximate abstraction
    level of the experiment C1 ladder. *)

type t

val create : Kernel.t -> string -> period:int -> t
val posedge : t -> Kernel.event
val wait_posedge : t -> unit
(** Suspend the calling thread until the next positive edge. *)

val cycles : t -> int
(** Number of edges fired so far. *)

val period : t -> int
