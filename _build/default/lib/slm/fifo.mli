(** Bounded blocking FIFO channels ([sc_fifo]).

    The standard SLM communication primitive: producers block when the
    FIFO is full, consumers when it is empty, with delta-cycle
    notification.  This is what makes the "serial RTL interface vs
    parallel SLM interface" refinement of the paper's Section 3.2
    expressible: the stream side of a transactor is a FIFO. *)

type 'a t

val create : Kernel.t -> string -> capacity:int -> 'a t
(** [capacity >= 1]. *)

val write : 'a t -> 'a -> unit
(** Blocking write (thread context only). *)

val read : 'a t -> 'a
(** Blocking read (thread context only). *)

val try_write : 'a t -> 'a -> bool
(** Non-blocking write; [false] when full. *)

val try_read : 'a t -> 'a option
(** Non-blocking read; [None] when empty. *)

val length : 'a t -> int
val capacity : 'a t -> int
val name : 'a t -> string

val data_written : 'a t -> Kernel.event
(** Fires (delta) after a write. *)

val data_read : 'a t -> Kernel.event
(** Fires (delta) after a read. *)
