(** Signals: request/update channels with delta semantics.

    The SLM counterpart of [sc_signal]: writes are requests that commit
    in the update phase of the current delta cycle, so every process that
    reads the signal in a given evaluation phase sees the same value —
    the determinism property co-simulation depends on. *)

type 'a t

val create : ?equal:('a -> 'a -> bool) -> Kernel.t -> string -> init:'a -> 'a t
(** A signal with an initial value.  [equal] (default [(=)]) decides
    whether a commit is a change (and hence whether [changed] fires). *)

val read : 'a t -> 'a
(** Current (committed) value. *)

val write : 'a t -> 'a -> unit
(** Request a new value; commits at this delta's update phase.  The last
    write in an evaluation phase wins. *)

val changed : 'a t -> Kernel.event
(** Fires (delta) whenever a commit changes the value. *)

val name : 'a t -> string
