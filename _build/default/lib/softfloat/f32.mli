(** Software IEEE-754 binary32 arithmetic, with RTL corner-cutting
    profiles.

    Section 3.1.2 of the paper: system-level models use the language's
    native IEEE floating point, while "RTL designers often do not
    implement the full IEEE standard" — denormals, NaN and infinity
    handling are "prohibitively costly in hardware" and are omitted when
    input constraints make the corner cases unreachable.  This module
    implements binary32 addition, subtraction and multiplication
    bit-exactly (round-to-nearest-even) under a {!profile} that can
    disable exactly those corner cases, so experiment C5 can measure the
    SLM/RTL divergence the paper describes and show the constrained-SEC
    remedy.

    Values are 32-bit patterns carried in an OCaml [int]. *)

type t = int
(** A binary32 bit pattern (0 .. 2^32-1). *)

type profile = {
  flush_denormals : bool;
      (** Treat denormal inputs as (signed) zero and flush denormal
          results to zero — the classic hardware FTZ/DAZ shortcut. *)
  no_specials : bool;
      (** No NaN/infinity datapath: inputs with exponent 255 are clamped
          to the largest finite value of their sign, and overflow
          saturates to largest-finite instead of producing infinity. *)
}

val ieee : profile
(** Full IEEE behaviour: [{ flush_denormals = false; no_specials = false }]. *)

val rtl_lite : profile
(** The corner-cutting RTL profile: both shortcuts enabled. *)

(** {1 Encoding} *)

val of_float : float -> t
(** Round a host float to binary32 (correctly, via the host's double
    rounding — innocuous for a single conversion). *)

val to_float : t -> float

val of_bitvec : Dfv_bitvec.Bitvec.t -> t
(** Reinterpret a 32-bit vector.  Raises [Invalid_argument] on other
    widths. *)

val to_bitvec : t -> Dfv_bitvec.Bitvec.t

val of_parts : sign:bool -> exponent:int -> mantissa:int -> t
(** Assemble from fields ([exponent] is the biased 8-bit field,
    [mantissa] the 23-bit fraction field). *)

val sign : t -> bool
val exponent : t -> int
val mantissa : t -> int

val is_nan : t -> bool
val is_infinity : t -> bool
val is_denormal : t -> bool
val is_zero : t -> bool

val quiet_nan : t
val infinity : bool -> t
(** [infinity sign]. *)

val max_finite : bool -> t
(** Largest-magnitude finite value of the given sign. *)

(** {1 Arithmetic} *)

val add : profile -> t -> t -> t
(** Round-to-nearest-even addition under the profile.  With {!ieee} this
    is bit-exact IEEE-754 (the test suite checks it against the host FPU
    exhaustively near corner cases and randomly elsewhere). *)

val sub : profile -> t -> t -> t
val mul : profile -> t -> t -> t

val equal_numeric : t -> t -> bool
(** Equality treating all NaNs as equal and [+0 = -0] — the comparison
    the cosim scoreboard uses for float payloads. *)

val to_string : t -> string
(** Hex pattern and decoded value, e.g. ["0x3f800000 (1.0)"]. *)
