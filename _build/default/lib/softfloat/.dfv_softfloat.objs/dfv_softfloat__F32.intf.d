lib/softfloat/f32.mli: Dfv_bitvec
