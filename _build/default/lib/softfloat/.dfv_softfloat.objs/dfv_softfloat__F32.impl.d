lib/softfloat/f32.ml: Dfv_bitvec Int32 Printf
