(* Software binary32 with round-to-nearest-even.

   Computation uses a wide fixed-point significand: a finite value is
   (sign, e, m) with value = m * 2^(e - 127 - 23 - 32), i.e. the 24-bit
   significand carries 32 extra low bits.  Normal numbers have m in
   [2^55, 2^56).  With 32 guard bits, operand alignment in addition is
   *exact* for exponent differences up to 32, and beyond that the
   truncated low bits are folded into bit 0 as a sticky marker — which
   can change the result only when the exact value was already strictly
   inside a rounding interval, so round-to-nearest-even is preserved.
   Everything fits comfortably in OCaml's 63-bit ints (m < 2^57). *)

module Bitvec = Dfv_bitvec.Bitvec

type t = int

type profile = { flush_denormals : bool; no_specials : bool }

let ieee = { flush_denormals = false; no_specials = false }
let rtl_lite = { flush_denormals = true; no_specials = true }

let mask32 = 0xFFFFFFFF
let extra = 32

let sign x = x lsr 31 = 1
let exponent x = (x lsr 23) land 0xff
let mantissa x = x land 0x7fffff

let of_parts ~sign ~exponent ~mantissa =
  if exponent < 0 || exponent > 255 then invalid_arg "F32.of_parts: exponent";
  if mantissa < 0 || mantissa > 0x7fffff then
    invalid_arg "F32.of_parts: mantissa";
  ((if sign then 1 else 0) lsl 31) lor (exponent lsl 23) lor mantissa

let is_nan x = exponent x = 255 && mantissa x <> 0
let is_infinity x = exponent x = 255 && mantissa x = 0
let is_denormal x = exponent x = 0 && mantissa x <> 0
let is_zero x = exponent x = 0 && mantissa x = 0

let quiet_nan = 0x7fc00000
let infinity s = of_parts ~sign:s ~exponent:255 ~mantissa:0
let max_finite s = of_parts ~sign:s ~exponent:254 ~mantissa:0x7fffff
let zero s = if s then 1 lsl 31 else 0

let of_float f = Int32.to_int (Int32.bits_of_float f) land mask32
let to_float x = Int32.float_of_bits (Int32.of_int x)

let of_bitvec bv =
  if Bitvec.width bv <> 32 then invalid_arg "F32.of_bitvec: width must be 32";
  Bitvec.to_int bv

let to_bitvec x = Bitvec.create ~width:32 x

let equal_numeric a b =
  if is_nan a && is_nan b then true
  else if is_zero a && is_zero b then true
  else a = b

let to_string x = Printf.sprintf "0x%08x (%h)" x (to_float x)

(* --- profile input conditioning ---------------------------------------- *)

let squash p x =
  let x = if p.flush_denormals && is_denormal x then zero (sign x) else x in
  if p.no_specials && exponent x = 255 then max_finite (sign x) else x

(* --- pack: normalize, subnormalize, round, encode ----------------------- *)

let normal_lo = 1 lsl (23 + extra) (* 2^55 *)
let normal_hi = 1 lsl (24 + extra) (* 2^56 *)

let shift_right_sticky m shift =
  if shift <= 0 then m
  else if shift >= 62 then if m <> 0 then 1 else 0
  else begin
    let lost = m land ((1 lsl shift) - 1) in
    (m lsr shift) lor (if lost <> 0 then 1 else 0)
  end

let pack p s e m =
  if m = 0 then zero s
  else begin
    let e = ref e and m = ref m in
    (* Normalize down (carry-out). *)
    while !m >= normal_hi do
      m := shift_right_sticky !m 1;
      incr e
    done;
    (* Normalize up (cancellation / denormal operands). *)
    while !m < normal_lo && !e > 1 do
      m := !m lsl 1;
      decr e
    done;
    (* Subnormal range: align to the e = 1 scale. *)
    if !e < 1 then begin
      m := shift_right_sticky !m (1 - !e);
      e := 1
    end;
    (* Round to nearest, ties to even, at the [extra]-bit boundary. *)
    let keep = !m lsr extra in
    let guard = (!m lsr (extra - 1)) land 1 in
    let sticky = !m land ((1 lsl (extra - 1)) - 1) in
    let keep =
      if guard = 1 && (sticky <> 0 || keep land 1 = 1) then keep + 1 else keep
    in
    let keep, e = if keep = 1 lsl 24 then (1 lsl 23, !e + 1) else (keep, !e) in
    if e >= 255 then begin
      if p.no_specials then max_finite s else infinity s
    end
    else if keep < 1 lsl 23 then begin
      (* Subnormal (e = 1 here) or zero. *)
      if keep = 0 then zero s
      else if p.flush_denormals then zero s
      else of_parts ~sign:s ~exponent:0 ~mantissa:keep
    end
    else of_parts ~sign:s ~exponent:e ~mantissa:(keep - (1 lsl 23))
  end

(* Unpack a finite (possibly denormal) value to (sign, e, sig24). *)
let unpack_finite x =
  let s = sign x and e = exponent x and f = mantissa x in
  if e = 0 then (s, 1, f) else (s, e, f lor (1 lsl 23))

(* --- addition ------------------------------------------------------------ *)

let add p a b =
  let a = squash p a and b = squash p b in
  if is_nan a || is_nan b then quiet_nan
  else if is_infinity a || is_infinity b then begin
    match (is_infinity a, is_infinity b) with
    | true, true -> if sign a = sign b then a else quiet_nan
    | true, false -> a
    | false, true -> b
    | false, false -> assert false
  end
  else if is_zero a && is_zero b then
    (* +0 + +0 = +0; -0 + -0 = -0; mixed = +0 (RNE). *)
    zero (sign a && sign b)
  else if is_zero a then b
  else if is_zero b then a
  else begin
    let sa, ea, ma = unpack_finite a in
    let sb, eb, mb = unpack_finite b in
    (* Put the larger magnitude first. *)
    let (sa, ea, ma), (sb, eb, mb) =
      if ea > eb || (ea = eb && ma >= mb) then ((sa, ea, ma), (sb, eb, mb))
      else ((sb, eb, mb), (sa, ea, ma))
    in
    let big = ma lsl extra in
    let small = shift_right_sticky (mb lsl extra) (ea - eb) in
    if sa = sb then pack p sa ea (big + small)
    else begin
      let diff = big - small in
      if diff = 0 then zero false else pack p sa ea diff
    end
  end

let neg32 x = x lxor (1 lsl 31)

let sub p a b = add p a (neg32 b)

(* --- multiplication -------------------------------------------------------- *)

let mul p a b =
  let a = squash p a and b = squash p b in
  if is_nan a || is_nan b then quiet_nan
  else begin
    let s = sign a <> sign b in
    if is_infinity a || is_infinity b then begin
      if is_zero a || is_zero b then quiet_nan else infinity s
    end
    else if is_zero a || is_zero b then zero s
    else begin
      let _, ea, ma = unpack_finite a in
      let _, eb, mb = unpack_finite b in
      (* Normalize denormal significands into [2^23, 2^24). *)
      let norm e m =
        let e = ref e and m = ref m in
        while !m < 1 lsl 23 do
          m := !m lsl 1;
          decr e
        done;
        (!e, !m)
      in
      let ea, ma = norm ea ma in
      let eb, mb = norm eb mb in
      (* prod in [2^46, 2^48); value = prod * 2^(ea+eb-300).
         Fixed point: value = m * 2^(e-182) with m = prod << 8, so
         e = ea + eb - 126 makes the scales match exactly. *)
      let prod = ma * mb in
      pack p s (ea + eb - 126) (prod lsl 8)
    end
  end
