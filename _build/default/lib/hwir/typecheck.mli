(** Static typing for HWIR programs.

    Checks every function of a program: variable scoping, integer
    width/signedness agreement on operators (the discipline whose C-level
    absence Section 3.1.1 blames for SLM/RTL divergence), array indexing,
    call signatures, absence of recursion, and that the entry point
    exists.  Programs that use the forbidden dynamic constructs still
    typecheck (they are {e well-typed but unconditioned}); catching them
    is {!Guideline}'s job. *)

exception Type_error of string

val check : Ast.program -> unit
(** Raises {!Type_error} with a descriptive message on the first
    violation found. *)

val check_report : Ast.program -> (unit, string) result
(** Non-raising wrapper. *)

val entry_signature : Ast.program -> (string * Ast.ty) list * Ast.ty
(** Parameter list and return type of the entry function.  Raises
    {!Type_error} if the entry is missing. *)
