(** Static elaboration of conditioned HWIR into an AIG.

    This is the "hardware-like model inferred statically from the source"
    that the paper's Section 4.3 requires of SLMs destined for sequential
    equivalence checking: calls are inlined, counted loops fully
    unrolled, bounded loops unrolled to their static bound with the
    conditional exit becoming a per-iteration guard, control flow becomes
    multiplexing, early returns become a return-guard, and arrays become
    decoded word banks.

    Exactly the unconditioned constructs — [While], [Alloc], [Alias],
    [Extern_call] — are rejected, with a message naming the guideline
    violated.  Together with {!Interp} this realizes experiment C6: a
    conditioned model both runs fast (interpreter) and admits formal
    analysis (this elaborator); its unconditioned twin only runs. *)

type shape =
  | Word of Dfv_aig.Word.w
  | Bank of Dfv_aig.Word.w array  (** an array value, word per element *)

exception Not_synthesizable of string

val elaborate :
  Ast.program ->
  g:Dfv_aig.Aig.t ->
  (string * shape) list * shape
(** [elaborate p ~g] builds the entry function of [p] as combinational
    logic in [g], with a fresh primary input per entry-parameter bit.
    Returns the parameter words (in declaration order; inputs are
    allocated in this order too, array elements in index order) and the
    result.  Raises {!Not_synthesizable} on guideline violations,
    recursion, or a path that can fall off the end of a function.

    The program must typecheck.  Semantics agree with {!Interp} except
    that division is total here (by-zero: quotient all-ones, remainder =
    dividend) while the interpreter raises — equivalence queries add a
    nonzero-divisor constraint when a model divides. *)

val apply : Ast.program -> g:Dfv_aig.Aig.t -> shape list -> shape
(** [apply p ~g args] elaborates the entry function of [p] applied to
    existing words instead of fresh inputs — how the equivalence checker
    shares one set of primary inputs between an SLM, the RTL transaction
    that consumes it, and the user's input constraints. *)

val apply_func : Ast.program -> g:Dfv_aig.Aig.t -> string -> shape list -> shape
(** [apply_func p ~g f args] is {!apply} for an arbitrary function of the
    program. *)
