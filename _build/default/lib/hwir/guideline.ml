open Ast

type violation =
  | Dynamic_allocation of { func : string; var : string }
  | Pointer_aliasing of { func : string; var : string; target : string }
  | Data_dependent_loop of { func : string }
  | External_call of { func : string; callee : string }
  | Unreachable_function of { func : string }

let is_advisory = function
  | Unreachable_function _ -> true
  | Dynamic_allocation _ | Pointer_aliasing _ | Data_dependent_loop _
  | External_call _ -> false

let pp_violation fmt = function
  | Dynamic_allocation { func; var } ->
    Format.fprintf fmt
      "%s: dynamic allocation of %s (use a statically sized array)" func var
  | Pointer_aliasing { func; var; target } ->
    Format.fprintf fmt
      "%s: %s aliases %s (use an explicit memory instead of aliasing)" func
      var target
  | Data_dependent_loop { func } ->
    Format.fprintf fmt
      "%s: data-dependent loop bound (use a static bound with a conditional \
       exit)"
      func
  | External_call { func; callee } ->
    Format.fprintf fmt "%s: call to external %s (model is not self-contained)"
      func callee
  | Unreachable_function { func } ->
    Format.fprintf fmt "%s: not reachable from the entry point" func

let rec scan_stmt func acc (st : stmt) =
  match st with
  | Assign _ | Return _ -> acc
  | If (_, t, e) ->
    let acc = List.fold_left (scan_stmt func) acc t in
    List.fold_left (scan_stmt func) acc e
  | For { body; _ } | Bounded_while { body; _ } ->
    List.fold_left (scan_stmt func) acc body
  | While (_, body) ->
    List.fold_left (scan_stmt func)
      (Data_dependent_loop { func } :: acc)
      body
  | Alloc { var; _ } -> Dynamic_allocation { func; var } :: acc
  | Alias { var; target } -> Pointer_aliasing { func; var; target } :: acc
  | Extern_call (callee, _) -> External_call { func; callee } :: acc

(* Call graph reachability from the entry, for the dead-code advisory. *)
let rec calls_in_expr acc = function
  | Int _ | Bool _ | Var _ -> acc
  | Index (_, e) | Unop (_, e) | Cast (_, e) | Bitsel (e, _, _) ->
    calls_in_expr acc e
  | Binop (_, a, b) -> calls_in_expr (calls_in_expr acc a) b
  | Cond (c, a, b) -> calls_in_expr (calls_in_expr (calls_in_expr acc c) a) b
  | Call (f, args) -> List.fold_left calls_in_expr (f :: acc) args

let rec calls_in_stmt acc = function
  | Assign (Lvar _, e) | Return e -> calls_in_expr acc e
  | Assign (Lindex (_, i), e) -> calls_in_expr (calls_in_expr acc i) e
  | If (c, t, e) ->
    let acc = calls_in_expr acc c in
    let acc = List.fold_left calls_in_stmt acc t in
    List.fold_left calls_in_stmt acc e
  | For { body; _ } -> List.fold_left calls_in_stmt acc body
  | Bounded_while { cond; body; _ } | While (cond, body) ->
    List.fold_left calls_in_stmt (calls_in_expr acc cond) body
  | Alloc { size; _ } -> calls_in_expr acc size
  | Alias _ -> acc
  | Extern_call (_, args) -> List.fold_left calls_in_expr acc args

let reachable p =
  let seen = Hashtbl.create 8 in
  let rec visit name =
    if not (Hashtbl.mem seen name) then begin
      Hashtbl.add seen name ();
      match find_func p name with
      | Some f ->
        List.iter visit (List.fold_left calls_in_stmt [] f.body)
      | None -> ()
    end
  in
  visit p.entry;
  seen

let check p =
  let structural =
    List.concat_map
      (fun f -> List.rev (List.fold_left (scan_stmt f.fname) [] f.body))
      p.funcs
  in
  let live = reachable p in
  let dead =
    List.filter_map
      (fun f ->
        if Hashtbl.mem live f.fname then None
        else Some (Unreachable_function { func = f.fname }))
      p.funcs
  in
  structural @ dead

let conditioned p = List.for_all is_advisory (check p)
