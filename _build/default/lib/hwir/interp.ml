module Bitvec = Dfv_bitvec.Bitvec
open Ast

type value = Vint of Bitvec.t | Varr of Bitvec.t array

exception Runtime_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Runtime_error m)) fmt

let vint ~width v = Vint (Bitvec.create ~width v)
let varr ~width vs = Varr (Array.map (fun v -> Bitvec.create ~width v) vs)

let as_int = function
  | Vint v -> v
  | Varr _ -> fail "expected a scalar value, got an array"

let as_arr = function
  | Varr a -> a
  | Vint _ -> fail "expected an array value, got a scalar"

(* Runtime slots.  Aliased names share the same [Sarr] record (hence the
   same underlying array). *)
type slot =
  | Sint of { mutable v : Bitvec.t; signed : bool }
  | Sarr of { arr : Bitvec.t array; signed : bool }

type scope = (string, slot) Hashtbl.t

exception Returned of value

let slot_of scope name =
  match Hashtbl.find_opt scope name with
  | Some s -> s
  | None -> fail "unknown variable %s" name

let truthy bv = Bitvec.reduce_or bv

let clamp_shift amount width =
  if Bitvec.width amount > 62 then width
  else min (Bitvec.to_int amount) width

(* Evaluation yields the value and its signedness (needed for the
   sign-dependent operators). *)
let rec eval prog extern (scope : scope) (e : expr) : Bitvec.t * bool =
  match e with
  | Int (bv, signed) -> (bv, signed)
  | Bool b -> (Bitvec.of_bool b, false)
  | Var n -> (
    match slot_of scope n with
    | Sint { v; signed } -> (v, signed)
    | Sarr _ -> fail "array %s used as a scalar" n)
  | Index (a, i) -> (
    match slot_of scope a with
    | Sarr { arr; signed } ->
      let iv, _ = eval prog extern scope i in
      let k = if Bitvec.width iv > 62 then max_int else Bitvec.to_int iv in
      if k >= Array.length arr then
        fail "index %d out of bounds for %s (size %d)" k a (Array.length arr);
      (arr.(k), signed)
    | Sint _ -> fail "scalar %s indexed as an array" a)
  | Unop (Not, a) ->
    let v, sg = eval prog extern scope a in
    (Bitvec.lognot v, sg)
  | Unop (Neg, a) ->
    let v, sg = eval prog extern scope a in
    (Bitvec.neg v, sg)
  | Unop (Lnot, a) ->
    let v, _ = eval prog extern scope a in
    (Bitvec.of_bool (not (truthy v)), false)
  | Binop (Land, a, b) ->
    let va, _ = eval prog extern scope a in
    if not (truthy va) then (Bitvec.of_bool false, false)
    else begin
      let vb, _ = eval prog extern scope b in
      (Bitvec.of_bool (truthy vb), false)
    end
  | Binop (Lor, a, b) ->
    let va, _ = eval prog extern scope a in
    if truthy va then (Bitvec.of_bool true, false)
    else begin
      let vb, _ = eval prog extern scope b in
      (Bitvec.of_bool (truthy vb), false)
    end
  | Binop (op, a, b) -> (
    let va, sa = eval prog extern scope a in
    let vb, _sb = eval prog extern scope b in
    match op with
    | Add -> (Bitvec.add va vb, sa)
    | Sub -> (Bitvec.sub va vb, sa)
    | Mul -> (Bitvec.mul va vb, sa)
    | Div ->
      if Bitvec.is_zero vb then fail "division by zero";
      ((if sa then Bitvec.sdiv va vb else Bitvec.udiv va vb), sa)
    | Rem ->
      if Bitvec.is_zero vb then fail "remainder by zero";
      ((if sa then Bitvec.srem va vb else Bitvec.urem va vb), sa)
    | And -> (Bitvec.logand va vb, sa)
    | Or -> (Bitvec.logor va vb, sa)
    | Xor -> (Bitvec.logxor va vb, sa)
    | Shl -> (Bitvec.shift_left va (clamp_shift vb (Bitvec.width va)), sa)
    | Shr ->
      let n = clamp_shift vb (Bitvec.width va) in
      ( (if sa then Bitvec.shift_right_arith va n
         else Bitvec.shift_right_logical va n),
        sa )
    | Eq -> (Bitvec.of_bool (Bitvec.equal va vb), false)
    | Ne -> (Bitvec.of_bool (not (Bitvec.equal va vb)), false)
    | Lt ->
      (Bitvec.of_bool (if sa then Bitvec.slt va vb else Bitvec.ult va vb), false)
    | Le ->
      (Bitvec.of_bool (if sa then Bitvec.sle va vb else Bitvec.ule va vb), false)
    | Land | Lor -> assert false)
  | Cond (c, a, b) ->
    let vc, _ = eval prog extern scope c in
    if truthy vc then eval prog extern scope a else eval prog extern scope b
  | Cast (Tint { width; signed }, a) ->
    let v, sa = eval prog extern scope a in
    let v' = if sa then Bitvec.sresize v width else Bitvec.uresize v width in
    (v', signed)
  | Cast (Tarray _, _) -> fail "cast to array type"
  | Bitsel (a, hi, lo) ->
    let v, _ = eval prog extern scope a in
    (Bitvec.select v ~hi ~lo, false)
  | Call (f, args) -> (
    match eval_call prog extern scope f args with
    | Vint v ->
      let signed =
        match find_func prog f with
        | Some { ret = Tint { signed; _ }; _ } -> signed
        | _ -> false
      in
      (v, signed)
    | Varr _ -> fail "array-returning call %s used in scalar context" f)

and eval_arg prog extern scope (e : expr) : value =
  match e with
  | Var n -> (
    match slot_of scope n with
    | Sint { v; _ } -> Vint v
    | Sarr { arr; _ } -> Varr (Array.copy arr) (* by-value *))
  | Call (f, args) -> eval_call prog extern scope f args
  | _ ->
    let v, _ = eval prog extern scope e in
    Vint v

and eval_call prog extern scope f args : value =
  match find_func prog f with
  | None -> fail "call to unknown function %s" f
  | Some fn ->
    let argv = List.map (eval_arg prog extern scope) args in
    exec_func prog extern fn argv

and exec_func prog extern (fn : func) (argv : value list) : value =
  if List.length argv <> List.length fn.params then
    fail "%s: expected %d arguments, got %d" fn.fname (List.length fn.params)
      (List.length argv);
  let scope : scope = Hashtbl.create 16 in
  List.iter2
    (fun (name, ty) v ->
      match (ty, v) with
      | Tint { width; signed }, Vint bv ->
        if Bitvec.width bv <> width then
          fail "%s: argument %s has width %d, expected %d" fn.fname name
            (Bitvec.width bv) width;
        Hashtbl.replace scope name (Sint { v = bv; signed })
      | Tarray (Tint { width; signed }, size), Varr arr ->
        if size >= 0 && Array.length arr <> size then
          fail "%s: argument %s has %d elements, expected %d" fn.fname name
            (Array.length arr) size;
        Array.iter
          (fun w ->
            if Bitvec.width w <> width then
              fail "%s: argument %s has a %d-bit element, expected %d"
                fn.fname name (Bitvec.width w) width)
          arr;
        Hashtbl.replace scope name (Sarr { arr = Array.copy arr; signed })
      | Tint _, Varr _ | Tarray _, Vint _ | Tarray (Tarray _, _), _ ->
        fail "%s: argument %s has the wrong shape" fn.fname name)
    fn.params argv;
  List.iter
    (fun (name, ty) ->
      match ty with
      | Tint { width; signed } ->
        Hashtbl.replace scope name (Sint { v = Bitvec.zero width; signed })
      | Tarray (Tint { width; signed }, size) ->
        Hashtbl.replace scope name
          (Sarr { arr = Array.make size (Bitvec.zero width); signed })
      | Tarray (Tarray _, _) -> fail "%s: nested array local" fn.fname)
    fn.locals;
  match List.iter (exec_stmt prog extern scope) fn.body with
  | () -> fail "%s: function finished without returning" fn.fname
  | exception Returned v -> v

and exec_stmt prog extern (scope : scope) (st : stmt) : unit =
  match st with
  | Assign (Lvar n, e) -> (
    match slot_of scope n with
    | Sint cell ->
      let v, _ = eval prog extern scope e in
      if Bitvec.width v <> Bitvec.width cell.v then
        fail "assignment to %s: width %d, expected %d" n (Bitvec.width v)
          (Bitvec.width cell.v);
      cell.v <- v
    | Sarr { arr; _ } -> (
      match eval_arg prog extern scope e with
      | Varr src ->
        if Array.length src <> Array.length arr then
          fail "array assignment to %s: %d elements, expected %d" n
            (Array.length src) (Array.length arr);
        Array.blit src 0 arr 0 (Array.length arr)
      | Vint _ -> fail "scalar assigned to array %s" n))
  | Assign (Lindex (a, i), e) -> (
    match slot_of scope a with
    | Sarr { arr; _ } ->
      let iv, _ = eval prog extern scope i in
      let k = if Bitvec.width iv > 62 then max_int else Bitvec.to_int iv in
      if k >= Array.length arr then
        fail "store index %d out of bounds for %s (size %d)" k a
          (Array.length arr);
      let v, _ = eval prog extern scope e in
      arr.(k) <- v
    | Sint _ -> fail "scalar %s indexed as an array" a)
  | If (c, t, e) ->
    let vc, _ = eval prog extern scope c in
    List.iter (exec_stmt prog extern scope) (if truthy vc then t else e)
  | For { ivar; count; body } ->
    let cell = Sint { v = Bitvec.zero 32; signed = false } in
    Hashtbl.replace scope ivar cell;
    (match cell with
    | Sint c ->
      for i = 0 to count - 1 do
        c.v <- Bitvec.create ~width:32 i;
        List.iter (exec_stmt prog extern scope) body
      done
    | Sarr _ -> assert false);
    Hashtbl.remove scope ivar
  | Bounded_while { cond; max_iter; body } ->
    (* Executes at most [max_iter] iterations — the same semantics the
       static elaborator gives the unrolled hardware. *)
    let rec go n =
      if n < max_iter then begin
        let vc, _ = eval prog extern scope cond in
        if truthy vc then begin
          List.iter (exec_stmt prog extern scope) body;
          go (n + 1)
        end
      end
    in
    go 0
  | While (cond, body) ->
    let rec go () =
      let vc, _ = eval prog extern scope cond in
      if truthy vc then begin
        List.iter (exec_stmt prog extern scope) body;
        go ()
      end
    in
    go ()
  | Return e -> raise (Returned (eval_arg prog extern scope e))
  | Alloc { var; elem; size } -> (
    match elem with
    | Tint { width; signed } ->
      let n, _ = eval prog extern scope size in
      let n = Bitvec.to_int n in
      Hashtbl.replace scope var
        (Sarr { arr = Array.make n (Bitvec.zero width); signed })
    | Tarray _ -> fail "allocation of array-of-array")
  | Alias { var; target } -> (
    match slot_of scope target with
    | Sarr _ as s -> Hashtbl.replace scope var s (* shares the array *)
    | Sint _ -> fail "alias target %s is not an array" target)
  | Extern_call (name, args) ->
    let argv = List.map (eval_arg prog extern scope) args in
    extern name argv

let default_extern name _ =
  fail "call to external function %s (model is not self-contained)" name

let call ?(extern = default_extern) prog fname args =
  match find_func prog fname with
  | None -> fail "unknown function %s" fname
  | Some fn -> exec_func prog extern fn args

let run ?extern prog args = call ?extern prog prog.entry args
