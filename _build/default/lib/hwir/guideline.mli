(** The design-for-verification model-conditioning linter.

    Implements the paper's Section 4.3 checklist for system-level models
    that are to be consumed by sequential equivalence checkers and
    behavioral synthesis — tools that must infer a hardware-like model
    from the source by static analysis:

    - statically sized arrays rather than dynamic allocation;
    - explicit memories rather than pointer aliasing;
    - static loop bounds (with conditional exits) rather than
      data-dependent loops;
    - a single well-defined entry point;
    - self-contained source (no external calls).

    A program with no violations is {e conditioned}; {!Elab.elaborate} is
    guaranteed to accept exactly the conditioned programs (plus the
    typecheckable ones — run {!Typecheck.check} first). *)

type violation =
  | Dynamic_allocation of { func : string; var : string }
  | Pointer_aliasing of { func : string; var : string; target : string }
  | Data_dependent_loop of { func : string }
  | External_call of { func : string; callee : string }
  | Unreachable_function of { func : string }
      (** Dead code: not reachable from the entry point (advisory). *)

val is_advisory : violation -> bool
(** Advisory violations don't block static elaboration. *)

val pp_violation : Format.formatter -> violation -> unit

val check : Ast.program -> violation list
(** All violations, in program order. *)

val conditioned : Ast.program -> bool
(** No non-advisory violations. *)
