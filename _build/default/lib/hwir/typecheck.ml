module Bitvec = Dfv_bitvec.Bitvec
open Ast

exception Type_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Type_error m)) fmt

let is_bool = function Tint { width = 1; signed = false } -> true | _ -> false

(* Scope: name -> type.  Dynamic arrays (from Alloc) are entered with
   size -1, meaning "no static bounds information". *)
type scope = (string, ty) Hashtbl.t

let lookup (sc : scope) fn name =
  match Hashtbl.find_opt sc name with
  | Some t -> t
  | None -> fail "%s: unknown variable %s" fn name

let rec type_of (p : program) (sc : scope) fn (e : expr) : ty =
  match e with
  | Int (bv, signed) -> Tint { width = Bitvec.width bv; signed }
  | Bool _ -> bool_ty
  | Var n -> (
    match lookup sc fn n with
    | Tint _ as t -> t
    | Tarray _ -> fail "%s: array %s used as a scalar" fn n)
  | Index (a, i) -> (
    match lookup sc fn a with
    | Tarray (elem, size) ->
      (match type_of p sc fn i with
      | Tint { signed = false; _ } -> ()
      | Tint { signed = true; _ } ->
        fail "%s: index into %s must be unsigned" fn a
      | Tarray _ -> assert false);
      (* Constant indices are bounds-checked statically. *)
      (match i with
      | Int (bv, _) when size >= 0 ->
        let v = Bitvec.to_int bv in
        if v >= size then
          fail "%s: constant index %d out of bounds for %s[%d]" fn v a size
      | _ -> ());
      elem
    | Tint _ -> fail "%s: scalar %s indexed as an array" fn a)
  | Unop (Lnot, a) ->
    let t = type_of p sc fn a in
    if not (is_bool t) then fail "%s: ! applied to non-bool" fn;
    bool_ty
  | Unop ((Not | Neg), a) -> (
    match type_of p sc fn a with
    | Tint _ as t -> t
    | Tarray _ -> assert false)
  | Binop (((Add | Sub | Mul | Div | Rem | And | Or | Xor) as op), a, b) ->
    let ta = type_of p sc fn a and tb = type_of p sc fn b in
    if not (ty_equal ta tb) then
      fail "%s: operator %s on mismatched types %s and %s" fn
        (binop_name op) (ty_str ta) (ty_str tb);
    ta
  | Binop ((Shl | Shr), a, b) ->
    let ta = type_of p sc fn a in
    (match type_of p sc fn b with
    | Tint { signed = false; _ } -> ()
    | Tint { signed = true; _ } -> fail "%s: shift amount must be unsigned" fn
    | Tarray _ -> assert false);
    ta
  | Binop (((Eq | Ne | Lt | Le) as op), a, b) ->
    let ta = type_of p sc fn a and tb = type_of p sc fn b in
    if not (ty_equal ta tb) then
      fail "%s: comparison %s on mismatched types %s and %s" fn
        (binop_name op) (ty_str ta) (ty_str tb);
    bool_ty
  | Binop ((Land | Lor), a, b) ->
    if not (is_bool (type_of p sc fn a) && is_bool (type_of p sc fn b)) then
      fail "%s: logical operator on non-bool operands" fn;
    bool_ty
  | Cond (c, a, b) ->
    if not (is_bool (type_of p sc fn c)) then
      fail "%s: conditional test must be bool" fn;
    let ta = type_of p sc fn a and tb = type_of p sc fn b in
    if not (ty_equal ta tb) then
      fail "%s: conditional arms have types %s and %s" fn (ty_str ta)
        (ty_str tb);
    ta
  | Cast ((Tint _ as t), a) ->
    (match type_of p sc fn a with
    | Tint _ -> ()
    | Tarray _ -> assert false);
    t
  | Cast (Tarray _, _) -> fail "%s: cannot cast to an array type" fn
  | Bitsel (a, hi, lo) -> (
    match type_of p sc fn a with
    | Tint { width; _ } ->
      if lo < 0 || hi < lo || hi >= width then
        fail "%s: bit-select [%d:%d] out of range for width %d" fn hi lo width;
      uint (hi - lo + 1)
    | Tarray _ -> assert false)
  | Call (callee, args) -> (
    match find_func p callee with
    | None -> fail "%s: call to unknown function %s" fn callee
    | Some f ->
      if List.length args <> List.length f.params then
        fail "%s: %s expects %d arguments, got %d" fn callee
          (List.length f.params) (List.length args);
      List.iter2
        (fun arg (pname, pty) ->
          let ta = arg_type p sc fn arg in
          if not (compatible_arg ta pty) then
            fail "%s: argument %s of %s has type %s, expected %s" fn pname
              callee (ty_str ta) (ty_str pty))
        args f.params;
      f.ret)

and arg_type p sc fn arg =
  (* Arrays may be passed whole: a bare Var of array type is legal in
     argument position. *)
  match arg with
  | Var n -> lookup sc fn n
  | _ -> type_of p sc fn arg

and compatible_arg actual formal =
  match (actual, formal) with
  | Tarray (ea, -1), Tarray (ef, _) -> ty_equal ea ef (* dynamic array *)
  | _ -> ty_equal actual formal

and ty_str t = Format.asprintf "%a" pp_ty t

and binop_name = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Rem -> "%"
  | And -> "&" | Or -> "|" | Xor -> "^" | Shl -> "<<" | Shr -> ">>"
  | Eq -> "==" | Ne -> "!=" | Lt -> "<" | Le -> "<=" | Land -> "&&"
  | Lor -> "||"

let check_bool p sc fn what e =
  if not (is_bool (type_of p sc fn e)) then
    fail "%s: %s must be bool (1-bit unsigned)" fn what

let rec check_stmt (p : program) (sc : scope) (f : func) (st : stmt) : unit =
  let fn = f.fname in
  match st with
  | Assign (Lvar n, e) -> (
    match lookup sc fn n with
    | Tint _ as t ->
      let te = type_of p sc fn e in
      if not (ty_equal t te) then
        fail "%s: assignment to %s of type %s from %s" fn n (ty_str t)
          (ty_str te)
    | Tarray _ as t -> (
      (* Whole-array assignment from a call or another array variable. *)
      let te = arg_type p sc fn e in
      match (t, te) with
      | Tarray (e1, n1), Tarray (e2, n2)
        when ty_equal e1 e2 && (n1 = n2 || n1 = -1 || n2 = -1) -> ()
      | _ ->
        fail "%s: assignment to array %s of type %s from %s" fn n (ty_str t)
          (ty_str te)))
  | Assign (Lindex (a, i), e) -> (
    match lookup sc fn a with
    | Tarray (elem, size) ->
      (match type_of p sc fn i with
      | Tint { signed = false; _ } -> ()
      | _ -> fail "%s: index into %s must be unsigned" fn a);
      (match i with
      | Int (bv, _) when size >= 0 && Bitvec.to_int bv >= size ->
        fail "%s: constant index out of bounds for %s" fn a
      | _ -> ());
      let te = type_of p sc fn e in
      if not (ty_equal elem te) then
        fail "%s: store to %s[] of type %s from %s" fn a (ty_str elem)
          (ty_str te)
    | Tint _ -> fail "%s: scalar %s indexed as an array" fn a)
  | If (c, t, e) ->
    check_bool p sc fn "if condition" c;
    List.iter (check_stmt p sc f) t;
    List.iter (check_stmt p sc f) e
  | For { ivar; count; body } ->
    if count < 0 then fail "%s: negative loop count" fn;
    if Hashtbl.mem sc ivar then
      fail "%s: loop variable %s shadows an existing name" fn ivar;
    Hashtbl.add sc ivar (uint 32);
    List.iter (check_stmt p sc f) body;
    Hashtbl.remove sc ivar
  | Bounded_while { cond; max_iter; body } ->
    if max_iter < 1 then fail "%s: bounded loop with max_iter %d" fn max_iter;
    check_bool p sc fn "loop condition" cond;
    List.iter (check_stmt p sc f) body
  | While (cond, body) ->
    check_bool p sc fn "loop condition" cond;
    List.iter (check_stmt p sc f) body
  | Return e ->
    let te = arg_type p sc fn e in
    if not (compatible_arg te f.ret) then
      fail "%s: return of type %s, function returns %s" fn (ty_str te)
        (ty_str f.ret)
  | Alloc { var; elem; size } ->
    (match elem with
    | Tint _ -> ()
    | Tarray _ -> fail "%s: allocation of array-of-array" fn);
    (match type_of p sc fn size with
    | Tint { signed = false; _ } -> ()
    | _ -> fail "%s: allocation size must be unsigned" fn);
    if Hashtbl.mem sc var then
      fail "%s: allocation target %s shadows an existing name" fn var;
    Hashtbl.add sc var (Tarray (elem, -1))
  | Alias { var; target } -> (
    match lookup sc fn target with
    | Tarray _ as t ->
      if Hashtbl.mem sc var then
        fail "%s: alias %s shadows an existing name" fn var;
      Hashtbl.add sc var t
    | Tint _ -> fail "%s: alias target %s is not an array" fn target)
  | Extern_call (_, args) ->
    List.iter (fun a -> ignore (arg_type p sc fn a)) args

let rec has_return stmts =
  List.exists
    (function
      | Return _ -> true
      | If (_, t, e) -> has_return t && has_return e
      | For { body; _ } | Bounded_while { body; _ } | While (_, body) ->
        has_return body
      | Assign _ | Alloc _ | Alias _ | Extern_call _ -> false)
    stmts

let check_ty fn what = function
  | Tint { width; _ } ->
    if width < 1 then fail "%s: %s has width %d" fn what width
  | Tarray (Tint { width; _ }, n) ->
    if width < 1 then fail "%s: %s has element width %d" fn what width;
    if n < 1 then fail "%s: %s has size %d" fn what n
  | Tarray (Tarray _, _) -> fail "%s: %s is an array of arrays" fn what

let check_func (p : program) (f : func) =
  let sc : scope = Hashtbl.create 16 in
  List.iter
    (fun (n, t) ->
      check_ty f.fname ("parameter " ^ n) t;
      if Hashtbl.mem sc n then fail "%s: duplicate parameter %s" f.fname n;
      Hashtbl.add sc n t)
    f.params;
  List.iter
    (fun (n, t) ->
      check_ty f.fname ("local " ^ n) t;
      if Hashtbl.mem sc n then fail "%s: duplicate local %s" f.fname n;
      Hashtbl.add sc n t)
    f.locals;
  check_ty f.fname "return type" f.ret;
  List.iter (check_stmt p sc f) f.body;
  if not (has_return f.body) then
    fail "%s: function may finish without returning" f.fname

(* Detect (mutual) recursion: DFS over the static call graph. *)
let rec calls_in_expr acc = function
  | Int _ | Bool _ | Var _ -> acc
  | Index (_, e) | Unop (_, e) | Cast (_, e) | Bitsel (e, _, _) ->
    calls_in_expr acc e
  | Binop (_, a, b) -> calls_in_expr (calls_in_expr acc a) b
  | Cond (c, a, b) -> calls_in_expr (calls_in_expr (calls_in_expr acc c) a) b
  | Call (f, args) -> List.fold_left calls_in_expr (f :: acc) args

let rec calls_in_stmt acc = function
  | Assign (Lvar _, e) | Return e -> calls_in_expr acc e
  | Assign (Lindex (_, i), e) -> calls_in_expr (calls_in_expr acc i) e
  | If (c, t, e) ->
    let acc = calls_in_expr acc c in
    let acc = List.fold_left calls_in_stmt acc t in
    List.fold_left calls_in_stmt acc e
  | For { body; _ } -> List.fold_left calls_in_stmt acc body
  | Bounded_while { cond; body; _ } | While (cond, body) ->
    List.fold_left calls_in_stmt (calls_in_expr acc cond) body
  | Alloc { size; _ } -> calls_in_expr acc size
  | Alias _ -> acc
  | Extern_call (_, args) -> List.fold_left calls_in_expr acc args

let callees f = List.sort_uniq compare (List.fold_left calls_in_stmt [] f.body)

let check_no_recursion p =
  let visiting = Hashtbl.create 8 and done_ = Hashtbl.create 8 in
  let rec visit name =
    if not (Hashtbl.mem done_ name) then begin
      if Hashtbl.mem visiting name then
        fail "recursion detected through function %s" name;
      Hashtbl.add visiting name ();
      (match find_func p name with
      | Some f -> List.iter visit (callees f)
      | None -> () (* unknown callee reported by per-function check *));
      Hashtbl.remove visiting name;
      Hashtbl.add done_ name ()
    end
  in
  List.iter (fun f -> visit f.fname) p.funcs

let check p =
  (match find_func p p.entry with
  | None -> fail "entry function %s not found" p.entry
  | Some _ -> ());
  let seen = Hashtbl.create 8 in
  List.iter
    (fun f ->
      if Hashtbl.mem seen f.fname then fail "duplicate function %s" f.fname;
      Hashtbl.add seen f.fname ())
    p.funcs;
  List.iter (check_func p) p.funcs;
  check_no_recursion p

let check_report p = match check p with () -> Ok () | exception Type_error m -> Error m

let entry_signature p =
  match find_func p p.entry with
  | Some f -> (f.params, f.ret)
  | None -> fail "entry function %s not found" p.entry
