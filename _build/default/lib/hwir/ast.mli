(** The conditioned-C intermediate representation (HWIR).

    An embedded imperative language that captures "algorithmic code with
    hardware intent" (paper, Section 4.3.1): fixed-width integer types,
    statically sized arrays, counted loops (or bounded loops with a
    conditional exit), single entry point, self-contained programs.

    The language deliberately also contains the constructs the paper's
    guidelines *forbid* — dynamic allocation, pointer aliasing,
    data-dependent [while] loops, external calls — so that the
    {!Guideline} linter and the {!Elab} static elaborator have real
    violations to catch, and experiment C6 can contrast conditioned and
    unconditioned models of the same algorithm. *)

type ty =
  | Tint of { width : int; signed : bool }
  | Tarray of ty * int  (** element type (must be [Tint]) and static size *)

type unop =
  | Not   (** bitwise complement *)
  | Neg
  | Lnot  (** logical not: bool -> bool *)

type binop =
  | Add | Sub | Mul | Div | Rem
  | And | Or | Xor
  | Shl | Shr  (** [Shr] is arithmetic for signed operands, logical otherwise *)
  | Eq | Ne | Lt | Le  (** signedness from operand type; result is bool *)
  | Land | Lor  (** logical; operands and result are bool *)

type expr =
  | Int of Dfv_bitvec.Bitvec.t * bool  (** value, signedness *)
  | Bool of bool
  | Var of string
  | Index of string * expr  (** array element read *)
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Cond of expr * expr * expr
  | Cast of ty * expr
      (** Width/sign conversion: truncate or extend per the *operand's*
          signedness (C semantics). *)
  | Bitsel of expr * int * int  (** [Bitsel (e, hi, lo)]: the HDL-style
      part-select that C lacks (paper: "mask and shift"). *)
  | Call of string * expr list

type lvalue = Lvar of string | Lindex of string * expr

type stmt =
  | Assign of lvalue * expr
  | If of expr * stmt list * stmt list
  | For of { ivar : string; count : int; body : stmt list }
      (** Counted loop: [ivar] ranges over [0 .. count-1] as an unsigned
          32-bit value. *)
  | Bounded_while of { cond : expr; max_iter : int; body : stmt list }
      (** The conditioned loop form the paper recommends: a static bound
          with a conditional exit. *)
  | While of expr * stmt list
      (** Data-dependent loop — forbidden by the guidelines, rejected by
          the static elaborator, executable by the interpreter. *)
  | Return of expr
  | Alloc of { var : string; elem : ty; size : expr }
      (** Dynamic allocation ([new]/[malloc]) — guideline violation. *)
  | Alias of { var : string; target : string }
      (** Pointer aliasing — guideline violation. *)
  | Extern_call of string * expr list
      (** Call into code outside the supplied sources — violation of
          self-containedness. *)

type func = {
  fname : string;
  params : (string * ty) list;
  ret : ty;
  locals : (string * ty) list;  (** zero-initialized *)
  body : stmt list;
}

type program = { funcs : func list; entry : string }

(** {1 Convenience constructors} *)

val u : int -> int -> expr
(** [u w v] is the unsigned [w]-bit literal [v]. *)

val s : int -> int -> expr
(** [s w v] is the signed [w]-bit literal [v]. *)

val uint : int -> ty
val sint : int -> ty
val bool_ty : ty
(** 1-bit unsigned. *)

val var : string -> expr
val ( +^ ) : expr -> expr -> expr
val ( -^ ) : expr -> expr -> expr
val ( *^ ) : expr -> expr -> expr
val ( /^ ) : expr -> expr -> expr
val ( %^ ) : expr -> expr -> expr
val ( ==^ ) : expr -> expr -> expr
val ( <>^ ) : expr -> expr -> expr
val ( <^ ) : expr -> expr -> expr
val ( <=^ ) : expr -> expr -> expr
val ( &&^ ) : expr -> expr -> expr
val ( ||^ ) : expr -> expr -> expr
val ( &^ ) : expr -> expr -> expr
val ( |^ ) : expr -> expr -> expr
val ( ^^ ) : expr -> expr -> expr
val ( <<^ ) : expr -> expr -> expr
val ( >>^ ) : expr -> expr -> expr
val idx : string -> expr -> expr
val cast : ty -> expr -> expr
val assign : string -> expr -> stmt
val assign_idx : string -> expr -> expr -> stmt
val ret : expr -> stmt

val find_func : program -> string -> func option
val ty_width : ty -> int
(** Width of an integer type; raises [Invalid_argument] on arrays. *)

val ty_equal : ty -> ty -> bool
val pp_ty : Format.formatter -> ty -> unit
