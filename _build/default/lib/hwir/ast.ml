module Bitvec = Dfv_bitvec.Bitvec

type ty =
  | Tint of { width : int; signed : bool }
  | Tarray of ty * int

type unop = Not | Neg | Lnot

type binop =
  | Add | Sub | Mul | Div | Rem
  | And | Or | Xor
  | Shl | Shr
  | Eq | Ne | Lt | Le
  | Land | Lor

type expr =
  | Int of Bitvec.t * bool
  | Bool of bool
  | Var of string
  | Index of string * expr
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Cond of expr * expr * expr
  | Cast of ty * expr
  | Bitsel of expr * int * int
  | Call of string * expr list

type lvalue = Lvar of string | Lindex of string * expr

type stmt =
  | Assign of lvalue * expr
  | If of expr * stmt list * stmt list
  | For of { ivar : string; count : int; body : stmt list }
  | Bounded_while of { cond : expr; max_iter : int; body : stmt list }
  | While of expr * stmt list
  | Return of expr
  | Alloc of { var : string; elem : ty; size : expr }
  | Alias of { var : string; target : string }
  | Extern_call of string * expr list

type func = {
  fname : string;
  params : (string * ty) list;
  ret : ty;
  locals : (string * ty) list;
  body : stmt list;
}

type program = { funcs : func list; entry : string }

let u w v = Int (Bitvec.create ~width:w v, false)
let s w v = Int (Bitvec.create ~width:w v, true)
let uint w = Tint { width = w; signed = false }
let sint w = Tint { width = w; signed = true }
let bool_ty = uint 1
let var n = Var n
let ( +^ ) a b = Binop (Add, a, b)
let ( -^ ) a b = Binop (Sub, a, b)
let ( *^ ) a b = Binop (Mul, a, b)
let ( /^ ) a b = Binop (Div, a, b)
let ( %^ ) a b = Binop (Rem, a, b)
let ( ==^ ) a b = Binop (Eq, a, b)
let ( <>^ ) a b = Binop (Ne, a, b)
let ( <^ ) a b = Binop (Lt, a, b)
let ( <=^ ) a b = Binop (Le, a, b)
let ( &&^ ) a b = Binop (Land, a, b)
let ( ||^ ) a b = Binop (Lor, a, b)
let ( &^ ) a b = Binop (And, a, b)
let ( |^ ) a b = Binop (Or, a, b)
let ( ^^ ) a b = Binop (Xor, a, b)
let ( <<^ ) a b = Binop (Shl, a, b)
let ( >>^ ) a b = Binop (Shr, a, b)
let idx a e = Index (a, e)
let cast t e = Cast (t, e)
let assign n e = Assign (Lvar n, e)
let assign_idx a i e = Assign (Lindex (a, i), e)
let ret e = Return e

let find_func p name = List.find_opt (fun f -> f.fname = name) p.funcs

let ty_width = function
  | Tint { width; _ } -> width
  | Tarray _ -> invalid_arg "Ast.ty_width: array type"

let ty_equal a b = a = b

let rec pp_ty fmt = function
  | Tint { width; signed } ->
    Format.fprintf fmt "%s%d" (if signed then "int" else "uint") width
  | Tarray (e, n) -> Format.fprintf fmt "%a[%d]" pp_ty e n
