lib/hwir/ast.ml: Dfv_bitvec Format List
