lib/hwir/guideline.mli: Ast Format
