lib/hwir/typecheck.ml: Ast Dfv_bitvec Format Hashtbl List Printf
