lib/hwir/elab.mli: Ast Dfv_aig
