lib/hwir/interp.ml: Array Ast Dfv_bitvec Hashtbl List Printf
