lib/hwir/typecheck.mli: Ast
