lib/hwir/elab.ml: Array Ast Dfv_aig Dfv_bitvec Hashtbl List Printf Sys
