lib/hwir/ast.mli: Dfv_bitvec Format
