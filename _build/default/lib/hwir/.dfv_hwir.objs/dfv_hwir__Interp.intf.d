lib/hwir/interp.mli: Ast Dfv_bitvec
