lib/hwir/guideline.ml: Ast Format Hashtbl List
