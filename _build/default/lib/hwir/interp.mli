(** The HWIR interpreter — the executable semantics of a system-level
    model written in the conditioned-C IR.

    This is the fast, untimed functional reference the paper's Section 2
    step 1 validates against application workloads: a pure function from
    input values to an output value.  The static elaborator ({!Elab})
    must agree with it bit-for-bit on conditioned programs; the test
    suite checks that agreement on random inputs for every bundled
    design. *)

type value =
  | Vint of Dfv_bitvec.Bitvec.t
  | Varr of Dfv_bitvec.Bitvec.t array

exception Runtime_error of string
(** Out-of-bounds access, division by zero, missing return, call into an
    unhandled external, or argument mismatch. *)

val run :
  ?extern:(string -> value list -> unit) ->
  Ast.program ->
  value list ->
  value
(** [run p args] evaluates the entry function of [p] on [args].  The
    program should already typecheck; the interpreter still carries
    enough dynamic checks to fail loudly rather than silently on broken
    programs.  [extern] handles {!Ast.Extern_call} statements (default:
    raise — external calls make a model non-self-contained). *)

val call :
  ?extern:(string -> value list -> unit) ->
  Ast.program ->
  string ->
  value list ->
  value
(** [call p f args] invokes an arbitrary function of the program. *)

val vint : width:int -> int -> value
val varr : width:int -> int array -> value
val as_int : value -> Dfv_bitvec.Bitvec.t
(** Raises {!Runtime_error} on arrays. *)

val as_arr : value -> Dfv_bitvec.Bitvec.t array
(** Raises {!Runtime_error} on scalars. *)
