module Bitvec = Dfv_bitvec.Bitvec
module Aig = Dfv_aig.Aig
module Word = Dfv_aig.Word
module Netlist = Dfv_rtl.Netlist
module Synth = Dfv_rtl.Synth
module Sim = Dfv_rtl.Sim
module Ast = Dfv_hwir.Ast
module Elab = Dfv_hwir.Elab
module Interp = Dfv_hwir.Interp
module Typecheck = Dfv_hwir.Typecheck
module Solver = Dfv_sat.Solver

type stats = {
  aig_ands : int;
  sat_conflicts : int;
  sat_decisions : int;
  sat_propagations : int;
  wall_seconds : float;
}

type cex = {
  params : (string * Interp.value) list;
  slm_result : Interp.value option;
  failed_checks : (Spec.check * Bitvec.t) list;
}

type verdict = Equivalent of stats | Not_equivalent of cex * stats

exception Spec_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Spec_error m)) fmt

let now () = Unix.gettimeofday ()

let stats_of g s t0 =
  {
    aig_ands = Aig.num_ands g;
    sat_conflicts = Solver.nconflicts s;
    sat_decisions = Solver.ndecisions s;
    sat_propagations = Solver.npropagations s;
    wall_seconds = now () -. t0;
  }

(* Read an AIG literal's value out of a SAT model; literals whose cone was
   never encoded are don't-cares (false). *)
let model_lit m solver l =
  if l = Aig.false_ then false
  else if l = Aig.true_ then true
  else begin
    match Aig.sat_lit m l with
    | sl -> Solver.value solver sl
    | exception Not_found -> false
  end

let model_word m solver (w : Word.w) =
  Bitvec.of_bits (Array.map (model_lit m solver) w)

(* --- SLM vs RTL ------------------------------------------------------- *)

(* Unroll the RTL [cycles] steps from reset inside [g], feeding inputs
   from [input_words t].  Returns the outputs of every cycle. *)
let unroll_rtl g (rtl : Netlist.elaborated) ~cycles ~input_words =
  let elements = Synth.state_elements rtl in
  let state =
    ref
      (List.map (fun (id, _, init) -> (id, Word.const init)) elements)
  in
  let outs = Array.make cycles [] in
  for t = 0 to cycles - 1 do
    let inputs = input_words t in
    let o, next =
      Synth.build rtl ~g
        ~inputs:(fun n ->
          match List.assoc_opt n inputs with
          | Some w -> w
          | None -> fail "input port %s not driven" n)
        ~state:(fun id -> List.assoc id !state)
    in
    outs.(t) <- o;
    state := next
  done;
  outs

let source_word ~param_shapes ~port ~width (src : Spec.source) : Word.w =
  match src with
  | Spec.Const bv ->
    if Bitvec.width bv <> width then
      fail "constant for port %s has width %d, port is %d" port
        (Bitvec.width bv) width;
    Word.const bv
  | Spec.Param name -> (
    match List.assoc_opt name param_shapes with
    | Some (Elab.Word w) ->
      if Array.length w <> width then
        fail "parameter %s has width %d, port %s is %d" name (Array.length w)
          port width;
      w
    | Some (Elab.Bank _) -> fail "parameter %s is an array (use Param_elem)" name
    | None -> fail "unknown SLM parameter %s" name)
  | Spec.Param_elem (name, i) -> (
    match List.assoc_opt name param_shapes with
    | Some (Elab.Bank bank) ->
      if i < 0 || i >= Array.length bank then
        fail "element %d out of range for parameter %s" i name;
      if Array.length bank.(i) <> width then
        fail "elements of %s have width %d, port %s is %d" name
          (Array.length bank.(i)) port width;
      bank.(i)
    | Some (Elab.Word _) -> fail "parameter %s is a scalar (use Param)" name
    | None -> fail "unknown SLM parameter %s" name)
  | Spec.Param_bits { name; hi; lo } -> (
    match List.assoc_opt name param_shapes with
    | Some (Elab.Word w) ->
      if lo < 0 || hi < lo || hi >= Array.length w then
        fail "bits [%d:%d] out of range for parameter %s" hi lo name;
      if hi - lo + 1 <> width then
        fail "bits [%d:%d] of %s have width %d, port %s is %d" hi lo name
          (hi - lo + 1) port width;
      Word.select w ~hi ~lo
    | Some (Elab.Bank _) -> fail "parameter %s is an array" name
    | None -> fail "unknown SLM parameter %s" name)

let constraint_words slm ~g param_shapes constraints =
  List.mapi
    (fun i expr ->
      let fn =
        match Ast.find_func slm slm.Ast.entry with
        | Some f -> f
        | None -> fail "SLM entry %s not found" slm.Ast.entry
      in
      let cname = Printf.sprintf "__constraint_%d" i in
      let wrapper =
        {
          Ast.funcs =
            slm.Ast.funcs
            @ [ {
                  Ast.fname = cname;
                  params = fn.Ast.params;
                  ret = Ast.bool_ty;
                  locals = [];
                  body = [ Ast.Return expr ];
                } ];
          entry = cname;
        }
      in
      (match Typecheck.check wrapper with
      | () -> ()
      | exception Typecheck.Type_error m -> fail "constraint %d: %s" i m);
      match Elab.apply wrapper ~g (List.map snd param_shapes) with
      | Elab.Word w when Array.length w = 1 -> w.(0)
      | Elab.Word _ | Elab.Bank _ -> fail "constraint %d is not boolean" i)
    constraints


(* Deciding the miter.

   Portfolio: first attempt the query directly with a bounded conflict
   budget — cheap miters (and most refutable ones) finish immediately.
   If the budget runs out, SAT-sweep the graph (merging internally
   equivalent nodes so structural differences between the two sides
   collapse locally) and re-solve without a budget.  [sweep:false]
   disables the fallback, for ablation measurements. *)
let direct_budget = 5_000

let decide_miter ~sweep g param_shapes violated cstrs =
  let attempt bounded g param_shapes violated cstrs =
    let solver = Solver.create () in
    let m = Aig.encoder g solver in
    List.iter (fun c -> Solver.add_clause solver [ Aig.encode m c ]) cstrs;
    let vlit = Aig.encode m violated in
    let result =
      if bounded then
        Solver.solve_bounded ~assumptions:[ vlit ] ~max_conflicts:direct_budget
          solver
      else Some (Solver.solve ~assumptions:[ vlit ] solver)
    in
    (result, solver, m, g, param_shapes)
  in
  match attempt sweep g param_shapes violated cstrs with
  | Some r, solver, m, g, ps -> (r, solver, m, g, ps)
  | None, _, _, _, _ ->
    let g2, tr = Dfv_aig.Sweep.fraig g in
    let tr_shape = function
      | Elab.Word w -> Elab.Word (Array.map tr w)
      | Elab.Bank b -> Elab.Bank (Array.map (Array.map tr) b)
    in
    let ps = List.map (fun (n, sh) -> (n, tr_shape sh)) param_shapes in
    (match attempt false g2 ps (tr violated) (List.map tr cstrs) with
    | Some r, solver, m, g, ps -> (r, solver, m, g, ps)
    | None, _, _, _, _ -> assert false)

let check_slm_rtl ?(sweep = true) ~slm ~rtl ~(spec : Spec.t) () =
  let t0 = now () in
  Typecheck.check slm;
  if spec.rtl_cycles < 1 then fail "rtl_cycles must be >= 1";
  let g = Aig.create () in
  let param_shapes, result = Elab.elaborate slm ~g in
  (* Validate the drive list covers the RTL inputs exactly. *)
  let port_width p =
    match
      List.find_opt (fun q -> q.Netlist.port_name = p) rtl.Netlist.e_inputs
    with
    | Some q -> q.Netlist.port_width
    | None -> fail "no RTL input port named %s" p
  in
  List.iter
    (fun p ->
      match List.assoc_opt p.Netlist.port_name spec.drives with
      | Some _ -> ()
      | None -> fail "RTL input %s is not driven by the spec" p.Netlist.port_name)
    rtl.Netlist.e_inputs;
  List.iter (fun (p, _) -> ignore (port_width p)) spec.drives;
  let input_words t =
    List.map
      (fun (port, drive) ->
        let width = port_width port in
        let src =
          match drive with
          | Spec.Hold bv -> Spec.Const bv
          | Spec.At f -> f t
        in
        (port, source_word ~param_shapes ~port ~width src))
      spec.drives
  in
  let outs = unroll_rtl g rtl ~cycles:spec.rtl_cycles ~input_words in
  (* Expected words from the SLM result. *)
  let expected_word (c : Spec.check) width =
    match (c.expect, result) with
    | Spec.Result, Elab.Word w ->
      if Array.length w <> width then
        fail "SLM result has width %d, RTL port %s is %d" (Array.length w)
          c.rtl_port width;
      w
    | Spec.Result_elem i, Elab.Bank bank ->
      if i < 0 || i >= Array.length bank then
        fail "result element %d out of range" i;
      if Array.length bank.(i) <> width then
        fail "SLM result elements have width %d, RTL port %s is %d"
          (Array.length bank.(i)) c.rtl_port width;
      bank.(i)
    | Spec.Result, Elab.Bank _ ->
      fail "SLM result is an array (use Result_elem)"
    | Spec.Result_elem _, Elab.Word _ ->
      fail "SLM result is a scalar (use Result)"
  in
  if spec.checks = [] then fail "spec has no output checks";
  let diffs =
    List.map
      (fun (c : Spec.check) ->
        if c.at_cycle < 0 || c.at_cycle >= spec.rtl_cycles then
          fail "check on %s at cycle %d outside transaction of %d cycles"
            c.rtl_port c.at_cycle spec.rtl_cycles;
        match List.assoc_opt c.rtl_port outs.(c.at_cycle) with
        | None -> fail "no RTL output port named %s" c.rtl_port
        | Some w -> Word.ne g w (expected_word c (Array.length w)))
      spec.checks
  in
  let violated = Aig.or_list g diffs in
  let cstrs = constraint_words slm ~g param_shapes spec.constraints in
  let result, solver, m, g, param_shapes =
    decide_miter ~sweep g param_shapes violated cstrs
  in
  match result with
  | Solver.Unsat -> Equivalent (stats_of g solver t0)
  | Solver.Sat ->
    (* Decode the SLM arguments from the model. *)
    let params =
      List.map
        (fun (name, shape) ->
          let v =
            match shape with
            | Elab.Word w -> Interp.Vint (model_word m solver w)
            | Elab.Bank bank ->
              Interp.Varr (Array.map (model_word m solver) bank)
          in
          (name, v))
        param_shapes
    in
    let slm_result =
      match Interp.run slm (List.map snd params) with
      | v -> Some v
      | exception Interp.Runtime_error _ -> None
    in
    (* Re-simulate the RTL on the concrete stimulus to report the actual
       diverging values. *)
    let sim = Sim.create rtl in
    let concrete_source (src : Spec.source) width =
      match src with
      | Spec.Const bv -> bv
      | Spec.Param name -> (
        match List.assoc name params with
        | Interp.Vint bv -> bv
        | Interp.Varr _ -> assert false)
      | Spec.Param_elem (name, i) -> (
        match List.assoc name params with
        | Interp.Varr a -> a.(i)
        | Interp.Vint _ -> assert false)
      | Spec.Param_bits { name; hi; lo } -> (
        match List.assoc name params with
        | Interp.Vint bv ->
          ignore width;
          Bitvec.select bv ~hi ~lo
        | Interp.Varr _ -> assert false)
    in
    let rtl_outputs = Array.make spec.rtl_cycles [] in
    for t = 0 to spec.rtl_cycles - 1 do
      let ins =
        List.map
          (fun (port, drive) ->
            let width = port_width port in
            let src =
              match drive with
              | Spec.Hold bv -> Spec.Const bv
              | Spec.At f -> f t
            in
            (port, concrete_source src width))
          spec.drives
      in
      rtl_outputs.(t) <- Sim.cycle sim ins
    done;
    let expected_value (c : Spec.check) =
      match (c.expect, slm_result) with
      | Spec.Result, Some (Interp.Vint bv) -> Some bv
      | Spec.Result_elem i, Some (Interp.Varr a) -> Some a.(i)
      | _, _ -> None
    in
    let failed_checks =
      List.filter_map
        (fun (c : Spec.check) ->
          let rtl_v = List.assoc c.rtl_port rtl_outputs.(c.at_cycle) in
          match expected_value c with
          | Some e when Bitvec.equal e rtl_v -> None
          | Some _ | None -> Some (c, rtl_v))
        spec.checks
    in
    Not_equivalent
      ({ params; slm_result; failed_checks }, stats_of g solver t0)

(* --- SLM vs SLM -------------------------------------------------------- *)

let check_slm_slm ?(sweep = true) ~a ~b ?(constraints = []) () =
  let t0 = now () in
  Typecheck.check a;
  Typecheck.check b;
  let sig_of (p : Ast.program) =
    match Ast.find_func p p.Ast.entry with
    | Some f -> (f.Ast.params, f.Ast.ret)
    | None -> fail "entry %s not found" p.Ast.entry
  in
  if sig_of a <> sig_of b then
    fail "entry signatures of the two SLMs differ";
  let g = Aig.create () in
  let param_shapes, result_a = Elab.elaborate a ~g in
  let result_b = Elab.apply b ~g (List.map snd param_shapes) in
  let violated =
    match (result_a, result_b) with
    | Elab.Word wa, Elab.Word wb -> Word.ne g wa wb
    | Elab.Bank ba, Elab.Bank bb ->
      if Array.length ba <> Array.length bb then
        fail "result banks have different sizes";
      Aig.or_list g
        (Array.to_list (Array.map2 (fun wa wb -> Word.ne g wa wb) ba bb))
    | Elab.Word _, Elab.Bank _ | Elab.Bank _, Elab.Word _ ->
      fail "result shapes differ"
  in
  let cstrs = constraint_words a ~g param_shapes constraints in
  let result, solver, m, g, param_shapes =
    decide_miter ~sweep g param_shapes violated cstrs
  in
  match result with
  | Solver.Unsat -> Equivalent (stats_of g solver t0)
  | Solver.Sat ->
    let params =
      List.map
        (fun (name, shape) ->
          let v =
            match shape with
            | Elab.Word w -> Interp.Vint (model_word m solver w)
            | Elab.Bank bank ->
              Interp.Varr (Array.map (model_word m solver) bank)
          in
          (name, v))
        param_shapes
    in
    let slm_result =
      match Interp.run a (List.map snd params) with
      | v -> Some v
      | exception Interp.Runtime_error _ -> None
    in
    Not_equivalent
      ({ params; slm_result; failed_checks = [] }, stats_of g solver t0)

(* --- RTL vs RTL -------------------------------------------------------- *)

type rtl_cex = {
  inputs_per_cycle : (string * Bitvec.t) list array;
  diverging_cycle : int;
  diverging_port : string;
  value_a : Bitvec.t;
  value_b : Bitvec.t;
}

type rtl_verdict =
  | Rtl_equivalent_to_bound of int * stats
  | Rtl_proved of int * stats
  | Rtl_not_equivalent of rtl_cex * stats

let check_port_compatibility (a : Netlist.elaborated) (b : Netlist.elaborated) =
  let sig_of d =
    List.sort compare
      (List.map (fun p -> (p.Netlist.port_name, p.Netlist.port_width)) d.Netlist.e_inputs)
  in
  if sig_of a <> sig_of b then
    fail "designs %s and %s have different input ports" a.Netlist.e_name
      b.Netlist.e_name;
  let outs d = List.sort compare (List.map fst d.Netlist.e_outputs) in
  if outs a <> outs b then
    fail "designs %s and %s have different output ports" a.Netlist.e_name
      b.Netlist.e_name

(* Shared unrolling used by BMC and the induction step. *)
let unroll_product g a b ~initial_a ~initial_b ~cycles =
  let input_log = Array.make cycles [] in
  let miters = Array.make cycles Aig.false_ in
  let state_a = ref initial_a and state_b = ref initial_b in
  for t = 0 to cycles - 1 do
    let inputs =
      List.map
        (fun p ->
          ( p.Netlist.port_name,
            Word.inputs ~name:(Printf.sprintf "%s@%d" p.Netlist.port_name t) g
              p.Netlist.port_width ))
        a.Netlist.e_inputs
    in
    input_log.(t) <- inputs;
    let outs_a, next_a =
      Synth.build a ~g
        ~inputs:(fun n -> List.assoc n inputs)
        ~state:(fun id -> List.assoc id !state_a)
    in
    let outs_b, next_b =
      Synth.build b ~g
        ~inputs:(fun n -> List.assoc n inputs)
        ~state:(fun id -> List.assoc id !state_b)
    in
    state_a := next_a;
    state_b := next_b;
    let diffs =
      List.map
        (fun (name, wa) ->
          let wb = List.assoc name outs_b in
          if Array.length wa <> Array.length wb then
            fail "output %s has width %d in %s but %d in %s" name
              (Array.length wa) a.Netlist.e_name (Array.length wb)
              b.Netlist.e_name;
          Word.ne g wa wb)
        outs_a
    in
    miters.(t) <- Aig.or_list g diffs
  done;
  (input_log, miters)

let reset_state (d : Netlist.elaborated) =
  List.map (fun (id, _, init) -> (id, Word.const init)) (Synth.state_elements d)

let find_divergence a b inputs_per_cycle =
  let sim_a = Sim.create a and sim_b = Sim.create b in
  let n = Array.length inputs_per_cycle in
  let rec go t =
    if t >= n then None
    else begin
      let outs_a = Sim.cycle sim_a inputs_per_cycle.(t) in
      let outs_b = Sim.cycle sim_b inputs_per_cycle.(t) in
      let diff =
        List.find_opt
          (fun (name, va) -> not (Bitvec.equal va (List.assoc name outs_b)))
          outs_a
      in
      match diff with
      | Some (name, va) -> Some (t, name, va, List.assoc name outs_b)
      | None -> go (t + 1)
    end
  in
  go 0

let check_rtl_rtl ~a ~b ~bound () =
  let t0 = now () in
  if bound < 1 then fail "bound must be >= 1";
  check_port_compatibility a b;
  let g = Aig.create () in
  let input_log, miters =
    unroll_product g a b ~initial_a:(reset_state a) ~initial_b:(reset_state b)
      ~cycles:bound
  in
  let solver = Solver.create () in
  let m = Aig.encoder g solver in
  let rec frames t =
    if t >= bound then Rtl_equivalent_to_bound (bound, stats_of g solver t0)
    else begin
      let lit = Aig.encode m miters.(t) in
      match Solver.solve ~assumptions:[ lit ] solver with
      | Solver.Unsat ->
        (* This frame can never diverge (given earlier frames were also
           checked); block it and move on. *)
        Solver.add_clause solver [ Dfv_sat.Lit.negate lit ];
        frames (t + 1)
      | Solver.Sat ->
        let concrete =
          Array.map
            (fun inputs ->
              List.map (fun (n, w) -> (n, model_word m solver w)) inputs)
            input_log
        in
        (match find_divergence a b concrete with
        | Some (t, port, va, vb) ->
          Rtl_not_equivalent
            ( {
                inputs_per_cycle = concrete;
                diverging_cycle = t;
                diverging_port = port;
                value_a = va;
                value_b = vb;
              },
              stats_of g solver t0 )
        | None ->
          (* The model satisfied the miter symbolically, so simulation
             must reproduce it; not doing so is a checker bug. *)
          fail "internal: SAT model did not re-simulate to a divergence")
    end
  in
  frames 0

let prove_rtl_rtl ~a ~b ~k () =
  let t0 = now () in
  if k < 1 then fail "k must be >= 1";
  (* Base case. *)
  match check_rtl_rtl ~a ~b ~bound:k () with
  | Rtl_not_equivalent _ as v -> v
  | Rtl_proved _ -> assert false
  | Rtl_equivalent_to_bound (_, base_stats) -> (
    (* Inductive step: arbitrary initial states, k agreeing cycles imply
       agreement at cycle k (0-based: frames 0..k-1 agree => frame k
       agrees). *)
    check_port_compatibility a b;
    let g = Aig.create () in
    let arb d tag =
      List.map
        (fun (id, w, _) ->
          ( id,
            Word.inputs
              ~name:(Printf.sprintf "%s.%s#0" tag (Synth.state_id_name id))
              g w ))
        (Synth.state_elements d)
    in
    let _, miters =
      unroll_product g a b ~initial_a:(arb a "a") ~initial_b:(arb b "b")
        ~cycles:(k + 1)
    in
    let solver = Solver.create () in
    let m = Aig.encoder g solver in
    for t = 0 to k - 1 do
      Solver.add_clause solver
        [ Dfv_sat.Lit.negate (Aig.encode m miters.(t)) ]
    done;
    let final = Aig.encode m miters.(k) in
    match Solver.solve ~assumptions:[ final ] solver with
    | Solver.Unsat ->
      let s = stats_of g solver t0 in
      Rtl_proved
        ( k,
          {
            s with
            sat_conflicts = s.sat_conflicts + base_stats.sat_conflicts;
            sat_decisions = s.sat_decisions + base_stats.sat_decisions;
            sat_propagations = s.sat_propagations + base_stats.sat_propagations;
          } )
    | Solver.Sat ->
      (* Induction failed: only the bounded claim survives. *)
      Rtl_equivalent_to_bound (k, stats_of g solver t0))
