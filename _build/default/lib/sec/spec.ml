module Bitvec = Dfv_bitvec.Bitvec

type drive = Hold of Bitvec.t | At of (int -> source)

and source =
  | Const of Bitvec.t
  | Param of string
  | Param_elem of string * int
  | Param_bits of { name : string; hi : int; lo : int }

type observe = Result | Result_elem of int

type check = { rtl_port : string; at_cycle : int; expect : observe }

type t = {
  rtl_cycles : int;
  drives : (string * drive) list;
  checks : check list;
  constraints : Dfv_hwir.Ast.expr list;
}

let stream_in ~param ~count ?(start = 0) ?(stride = 1) () =
  if count < 1 then invalid_arg "Spec.stream_in: count must be >= 1";
  At
    (fun cycle ->
      let i =
        if cycle < start then 0
        else begin
          let k = (cycle - start) / stride in
          min k (count - 1)
        end
      in
      Param_elem (param, i))

let stream_out ~rtl_port ~count ?(start = 0) ?(stride = 1) () =
  List.init count (fun i ->
      { rtl_port; at_cycle = start + (i * stride); expect = Result_elem i })
