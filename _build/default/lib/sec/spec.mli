(** Transaction specifications for sequential equivalence checking.

    Following the paper's Section 2: SEC "requires the specification of
    how the inputs map between the SLM and RTL and specification of when
    to check the outputs" — a repeating computational transaction.  A
    {!t} describes one transaction: the RTL runs for [rtl_cycles] from
    its reset state; each RTL input port is driven, cycle by cycle, from
    SLM parameters or constants; each listed RTL output is compared at a
    given cycle against the SLM result (or an element of an array
    result); and optional constraints restrict the input space — the
    paper's remedy when models are only conditionally bit-accurate
    (Section 3.1.2). *)

type drive =
  | Hold of Dfv_bitvec.Bitvec.t
      (** Drive a constant for the whole transaction. *)
  | At of (int -> source)
      (** Cycle-indexed source — the general stimulus adapter. *)

and source =
  | Const of Dfv_bitvec.Bitvec.t
  | Param of string  (** SLM scalar parameter, width-matched *)
  | Param_elem of string * int  (** element of an SLM array parameter *)
  | Param_bits of { name : string; hi : int; lo : int }
      (** bit-slice of an SLM scalar parameter — for serializing a wide
          SLM argument onto a narrow RTL port *)

type observe =
  | Result  (** the SLM scalar result *)
  | Result_elem of int  (** element [i] of the SLM array result *)

type check = {
  rtl_port : string;
  at_cycle : int;  (** 0-based cycle at which the output is sampled *)
  expect : observe;
}

type t = {
  rtl_cycles : int;  (** transaction length on the RTL side *)
  drives : (string * drive) list;  (** one entry per RTL input port *)
  checks : check list;
  constraints : Dfv_hwir.Ast.expr list;
      (** Boolean HWIR expressions over the SLM entry parameters;
          counterexamples must satisfy all of them. *)
}

val stream_in :
  param:string -> count:int -> ?start:int -> ?stride:int -> unit -> drive
(** [stream_in ~param ~count ()] drives an array parameter one element
    per cycle: element [i] at cycle [start + i*stride] (defaults 0, 1).
    Before the stream begins and after it ends the port holds element 0
    and the last element respectively — a common transactor shape for
    serializing the SLM's parallel interface (paper, Section 3.2). *)

val stream_out :
  rtl_port:string -> count:int -> ?start:int -> ?stride:int -> unit -> check list
(** Compare an array result element per cycle: element [i] against
    [rtl_port] at cycle [start + i*stride]. *)
