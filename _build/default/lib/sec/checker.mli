(** The sequential equivalence checker.

    Two entry points:

    - {!check_slm_rtl}: the paper's headline flow — an SLM block (a
      conditioned HWIR program, statically elaborated to combinational
      logic) against an RTL block, under a transaction {!Spec.t}.  The
      RTL is unrolled [rtl_cycles] steps from its reset state, inputs
      are tied to the SLM's parameters per the spec, and a SAT query
      decides whether any constraint-satisfying input makes an observed
      output differ.

    - {!check_rtl_rtl}: RTL-vs-RTL sequential equivalence on a product
      machine — bounded model checking from reset with shared inputs,
      plus {!prove_rtl_rtl} for unbounded proofs by k-induction.

    All verdicts carry solver statistics so the experiments can report
    effort (time-to-counterexample, conflicts, graph sizes). *)

type stats = {
  aig_ands : int;
  sat_conflicts : int;
  sat_decisions : int;
  sat_propagations : int;
  wall_seconds : float;
}

type cex = {
  params : (string * Dfv_hwir.Interp.value) list;
      (** SLM argument values that exhibit the divergence. *)
  slm_result : Dfv_hwir.Interp.value option;
      (** The SLM's output on those arguments ([None] if the interpreter
          rejected them, e.g. division by zero). *)
  failed_checks : (Spec.check * Dfv_bitvec.Bitvec.t) list;
      (** Which observations differ, with the RTL's value (from
          re-simulation of the counterexample). *)
}

type verdict =
  | Equivalent of stats
  | Not_equivalent of cex * stats

exception Spec_error of string
(** Malformed specification: undriven RTL input, unknown port or
    parameter, width mismatch, out-of-range cycle, non-bool constraint. *)

val check_slm_rtl :
  ?sweep:bool ->
  slm:Dfv_hwir.Ast.program ->
  rtl:Dfv_rtl.Netlist.elaborated ->
  spec:Spec.t ->
  unit ->
  verdict
(** Run one SLM-vs-RTL transaction equivalence query.  The SLM program
    must typecheck and be conditioned (statically elaborable); the
    checker raises {!Dfv_hwir.Elab.Not_synthesizable} otherwise — the
    tool-flow consequence of violating the Section 4.3 guidelines.
    Solving is a portfolio: a bounded direct attempt first, then SAT
    sweeping ({!Dfv_aig.Sweep}) plus an unbounded query; [sweep:false]
    disables the sweeping fallback (for ablation measurements), making
    the direct attempt unbounded instead. *)

val check_slm_slm :
  ?sweep:bool ->
  a:Dfv_hwir.Ast.program ->
  b:Dfv_hwir.Ast.program ->
  ?constraints:Dfv_hwir.Ast.expr list ->
  unit ->
  verdict
(** Equivalence of two SLM blocks with identical entry signatures —
    the cross-abstraction consistency check (e.g. an IEEE-faithful float
    model against its corner-cutting twin, experiment C5).  Both are
    statically elaborated over one shared set of inputs; [constraints]
    restrict the input space as in {!check_slm_rtl}.  The returned
    counterexample's [slm_result] is model [a]'s output; [failed_checks]
    is empty (there is no RTL to re-simulate) — interpret both models on
    [params] to see the divergence. *)

type rtl_cex = {
  inputs_per_cycle : (string * Dfv_bitvec.Bitvec.t) list array;
  diverging_cycle : int;
  diverging_port : string;
  value_a : Dfv_bitvec.Bitvec.t;
  value_b : Dfv_bitvec.Bitvec.t;
}

type rtl_verdict =
  | Rtl_equivalent_to_bound of int * stats
      (** No divergence within the bound (bounded claim only). *)
  | Rtl_proved of int * stats
      (** Proved equivalent for all time by k-induction at depth k. *)
  | Rtl_not_equivalent of rtl_cex * stats

val check_rtl_rtl :
  a:Dfv_rtl.Netlist.elaborated ->
  b:Dfv_rtl.Netlist.elaborated ->
  bound:int ->
  unit ->
  rtl_verdict
(** BMC on the product machine: both designs start at reset, share input
    values by port name (the designs must have identical input and
    output port lists), and every common output is compared at every
    cycle up to [bound].  Queries are incremental — one solver session
    per call, frames added as needed — which is what makes the paper's
    "incremental runs localize divergence quickly" observation hold. *)

val prove_rtl_rtl :
  a:Dfv_rtl.Netlist.elaborated ->
  b:Dfv_rtl.Netlist.elaborated ->
  k:int ->
  unit ->
  rtl_verdict
(** k-induction: base case = BMC to depth [k]; inductive step = from an
    arbitrary pair of states, [k] cycles of output agreement imply
    agreement at cycle [k+1].  Returns [Rtl_proved] on success,
    [Rtl_not_equivalent] on a real (reset-reachable) divergence, and
    [Rtl_equivalent_to_bound] when the induction step fails (the bounded
    claim still holds). *)
