lib/sec/spec.ml: Dfv_bitvec Dfv_hwir List
