lib/sec/spec.mli: Dfv_bitvec Dfv_hwir
