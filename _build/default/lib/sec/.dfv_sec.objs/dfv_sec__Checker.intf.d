lib/sec/checker.mli: Dfv_bitvec Dfv_hwir Dfv_rtl Spec
