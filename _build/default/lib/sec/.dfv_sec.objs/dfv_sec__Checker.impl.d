lib/sec/checker.ml: Array Dfv_aig Dfv_bitvec Dfv_hwir Dfv_rtl Dfv_sat List Printf Spec Unix
