(** Verification flows over a design pair.

    The paper's two ways of leveraging an SLM for RTL verification
    (Section 2), both driven by the {e same} transaction specification:

    - {!simulate}: simulation-based comparison — random transactions,
      the SLM (interpreter) produces expected outputs, the RTL simulator
      is driven through the spec's stimulus adapter, and the spec's
      checks are compared;
    - {!sec}: sequential equivalence checking via {!Dfv_sec.Checker}.

    {!verify} combines them the way a design team would: audit first,
    SEC when the model is conditioned, simulation as the fallback — and
    always reports which path ran. *)

type sim_outcome =
  | Sim_clean of { vectors : int }
  | Sim_mismatch of {
      vector_index : int;  (** 0-based index of the failing transaction *)
      params : (string * Dfv_hwir.Interp.value) list;
      failed_checks : (Dfv_sec.Spec.check * Dfv_bitvec.Bitvec.t * Dfv_bitvec.Bitvec.t) list;
          (** (check, expected, got) *)
    }

val simulate : ?seed:int -> vectors:int -> Pair.t -> sim_outcome
(** Run [vectors] random transactions.  Parameter values are drawn
    uniformly; vectors violating the spec's constraints are redrawn
    (up to a factor of 100, then [Failure]).  Stops at the first
    mismatch. *)

val sec : Pair.t -> Dfv_sec.Checker.verdict
(** One SEC query on the pair. *)

type verify_outcome =
  | Proved of Dfv_sec.Checker.stats
  | Refuted of Dfv_sec.Checker.cex * Dfv_sec.Checker.stats
  | Simulated of sim_outcome
      (** SEC was blocked (see the audit); simulation ran instead. *)

type report = { audit : Pair.audit; outcome : verify_outcome }

val verify : ?seed:int -> ?sim_vectors:int -> Pair.t -> report
(** The combined flow ([sim_vectors] defaults to 1000). *)

val pp_report : Format.formatter -> report -> unit
