module Ast = Dfv_hwir.Ast
module Typecheck = Dfv_hwir.Typecheck
module Guideline = Dfv_hwir.Guideline
module Netlist = Dfv_rtl.Netlist
module Lint = Dfv_rtl.Lint
module Spec = Dfv_sec.Spec

type t = {
  name : string;
  slm : Ast.program;
  rtl : Netlist.elaborated;
  spec : Spec.t;
}

let create ~name ~slm ~rtl ~spec = { name; slm; rtl; spec }

type audit = {
  slm_types : (unit, string) result;
  violations : Guideline.violation list;
  conditioned : bool;
  rtl_issues : Lint.issue list;
  sec_ready : bool;
  sec_blocker : string option;
}

let spec_covers_ports t =
  let undriven =
    List.filter
      (fun p -> not (List.mem_assoc p.Netlist.port_name t.spec.Spec.drives))
      t.rtl.Netlist.e_inputs
  in
  match undriven with
  | [] ->
    if t.spec.Spec.checks = [] then Error "spec has no output checks" else Ok ()
  | p :: _ ->
    Error (Printf.sprintf "RTL input %s is not driven by the spec" p.Netlist.port_name)

let audit t =
  let slm_types = Typecheck.check_report t.slm in
  let violations = Guideline.check t.slm in
  let conditioned = List.for_all Guideline.is_advisory violations in
  let rtl_issues = Lint.check t.rtl in
  let sec_blocker =
    match slm_types with
    | Error m -> Some ("SLM does not typecheck: " ^ m)
    | Ok () ->
      if not conditioned then
        Some "SLM violates the model-conditioning guidelines"
      else begin
        match spec_covers_ports t with
        | Error m -> Some m
        | Ok () -> None
      end
  in
  {
    slm_types;
    violations;
    conditioned;
    rtl_issues;
    sec_ready = sec_blocker = None;
    sec_blocker;
  }

let pp_audit fmt a =
  let open Format in
  (match a.slm_types with
  | Ok () -> fprintf fmt "SLM types: ok@."
  | Error m -> fprintf fmt "SLM types: ERROR %s@." m);
  if a.violations = [] then fprintf fmt "Guidelines: clean@."
  else
    List.iter
      (fun v ->
        fprintf fmt "Guideline %s: %a@."
          (if Guideline.is_advisory v then "advisory" else "VIOLATION")
          Guideline.pp_violation v)
      a.violations;
  if a.rtl_issues = [] then fprintf fmt "RTL lint: clean@."
  else
    List.iter (fun i -> fprintf fmt "RTL lint: %a@." Lint.pp_issue i) a.rtl_issues;
  match a.sec_blocker with
  | None -> fprintf fmt "SEC: ready@."
  | Some m -> fprintf fmt "SEC: blocked (%s)@." m
