(** Design pairs: one SLM block, one RTL block, one transaction map.

    The unit of the paper's methodology (Section 4.2): a consistently
    partitioned block with a one-to-one SLM/RTL correspondence and a
    cleanly defined interface, packaged with the transaction
    specification that aligns the two.  {!audit} runs the
    design-for-verification checks of Sections 3 and 4 on the pair
    before any verification is attempted. *)

type t = {
  name : string;
  slm : Dfv_hwir.Ast.program;
  rtl : Dfv_rtl.Netlist.elaborated;
  spec : Dfv_sec.Spec.t;
}

val create :
  name:string ->
  slm:Dfv_hwir.Ast.program ->
  rtl:Dfv_rtl.Netlist.elaborated ->
  spec:Dfv_sec.Spec.t ->
  t

type audit = {
  slm_types : (unit, string) result;
      (** HWIR typecheck — width/sign discipline (Section 3.1.1) *)
  violations : Dfv_hwir.Guideline.violation list;
      (** model-conditioning lint (Section 4.3) *)
  conditioned : bool;
      (** no blocking violations: the SLM admits static analysis *)
  rtl_issues : Dfv_rtl.Lint.issue list;  (** structural RTL lint *)
  sec_ready : bool;
      (** typechecks, conditioned, and the spec covers the RTL ports *)
  sec_blocker : string option;
      (** why SEC cannot run, when [not sec_ready] *)
}

val audit : t -> audit

val pp_audit : Format.formatter -> audit -> unit
(** Human-readable audit report. *)
