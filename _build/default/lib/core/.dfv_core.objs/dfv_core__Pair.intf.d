lib/core/pair.mli: Dfv_hwir Dfv_rtl Dfv_sec Format
