lib/core/flow.mli: Dfv_bitvec Dfv_hwir Dfv_sec Format Pair
