lib/core/flow.ml: Array Dfv_bitvec Dfv_hwir Dfv_rtl Dfv_sec Format Hashtbl List Pair Printf Random String
