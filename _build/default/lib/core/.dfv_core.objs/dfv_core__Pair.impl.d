lib/core/pair.ml: Dfv_hwir Dfv_rtl Dfv_sec Format List Printf
