open Netlist

type issue =
  | Unused_signal of string
  | Unread_register of string
  | Memory_never_read of string
  | Memory_never_written of string
  | Constant_output of string
  | Degenerate_mux of string

let pp_issue fmt = function
  | Unused_signal n -> Format.fprintf fmt "unused signal %s" n
  | Unread_register n -> Format.fprintf fmt "register %s is never read" n
  | Memory_never_read n -> Format.fprintf fmt "memory %s is never read" n
  | Memory_never_written n -> Format.fprintf fmt "memory %s is never written" n
  | Constant_output n -> Format.fprintf fmt "output %s is a constant" n
  | Degenerate_mux n -> Format.fprintf fmt "wire %s contains a mux with identical arms" n

let rec has_degenerate_mux (e : Expr.t) =
  match e with
  | Expr.Const _ | Expr.Signal _ -> false
  | Expr.Mux (s, a, b) ->
    a = b || has_degenerate_mux s || has_degenerate_mux a
    || has_degenerate_mux b
  | Expr.Unop (_, a)
  | Expr.Slice (a, _, _)
  | Expr.Zext (a, _)
  | Expr.Sext (a, _)
  | Expr.Repeat (a, _)
  | Expr.Mem_read (_, a) -> has_degenerate_mux a
  | Expr.Binop (_, a, b) -> has_degenerate_mux a || has_degenerate_mux b
  | Expr.Concat es -> List.exists has_degenerate_mux es

let check (d : elaborated) =
  let used : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  let mems_read : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  let note e =
    List.iter (fun n -> Hashtbl.replace used n ()) (Expr.signals e);
    List.iter (fun m -> Hashtbl.replace mems_read m ()) (Expr.memories e)
  in
  List.iter (fun (_, e) -> note e) d.e_wires;
  List.iter (fun (_, e) -> note e) d.e_outputs;
  List.iter
    (fun r ->
      note r.next;
      Option.iter note r.enable)
    d.e_regs;
  List.iter
    (fun m ->
      List.iter
        (fun wp ->
          note wp.wr_enable;
          note wp.wr_addr;
          note wp.wr_data)
        m.writes)
    d.e_mems;
  let issues = ref [] in
  let add i = issues := i :: !issues in
  List.iter
    (fun p ->
      if not (Hashtbl.mem used p.port_name) then add (Unused_signal p.port_name))
    d.e_inputs;
  List.iter
    (fun (n, _) -> if not (Hashtbl.mem used n) then add (Unused_signal n))
    d.e_wires;
  List.iter
    (fun r ->
      if not (Hashtbl.mem used r.reg_name) then add (Unread_register r.reg_name))
    d.e_regs;
  List.iter
    (fun m ->
      if not (Hashtbl.mem mems_read m.mem_name) then
        add (Memory_never_read m.mem_name);
      if m.writes = [] && m.mem_init = None then
        add (Memory_never_written m.mem_name))
    d.e_mems;
  List.iter
    (fun (n, e) ->
      match e with Expr.Const _ -> add (Constant_output n) | _ -> ())
    d.e_outputs;
  List.iter
    (fun (n, e) -> if has_degenerate_mux e then add (Degenerate_mux n))
    d.e_wires;
  List.rev !issues
