lib/rtl/expr.ml: Dfv_bitvec Format List Printf
