lib/rtl/vcd.ml: Buffer Char Dfv_bitvec Hashtbl List Netlist Printf Sim String
