lib/rtl/lint.ml: Expr Format Hashtbl List Netlist Option
