lib/rtl/lint.mli: Format Netlist
