lib/rtl/expr.mli: Dfv_bitvec Format
