lib/rtl/verilog.ml: Array Buffer Dfv_bitvec Expr Hashtbl List Netlist Printf String
