lib/rtl/netlist.ml: Array Dfv_bitvec Expr Hashtbl List Option Printf
