lib/rtl/synth.ml: Array Dfv_aig Dfv_bitvec Expr Hashtbl List Netlist Printf
