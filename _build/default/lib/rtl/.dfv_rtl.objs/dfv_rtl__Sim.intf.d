lib/rtl/sim.mli: Dfv_bitvec Netlist
