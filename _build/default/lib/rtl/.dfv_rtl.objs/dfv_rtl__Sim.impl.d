lib/rtl/sim.ml: Array Dfv_bitvec Expr Hashtbl List Netlist Printf
