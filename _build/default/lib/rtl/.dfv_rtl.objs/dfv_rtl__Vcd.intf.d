lib/rtl/vcd.mli: Buffer Netlist Sim
