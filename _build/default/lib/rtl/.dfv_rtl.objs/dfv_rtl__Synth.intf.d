lib/rtl/synth.mli: Dfv_aig Dfv_bitvec Netlist
