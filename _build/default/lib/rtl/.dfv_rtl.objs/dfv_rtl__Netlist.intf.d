lib/rtl/netlist.mli: Dfv_bitvec Expr
