(** Structural lint for RTL modules.

    Complements {!Netlist.elaborate} (which rejects hard errors: duplicate
    or unknown names, width violations, combinational cycles) with
    warnings about suspicious-but-legal structure.  Part of the paper's
    Section 4 design-for-verification checks on the RTL side. *)

type issue =
  | Unused_signal of string
      (** A wire or input referenced by nothing (not by a wire, register,
          memory port, or output). *)
  | Unread_register of string
      (** A register whose value no expression observes. *)
  | Memory_never_read of string
  | Memory_never_written of string
  | Constant_output of string
      (** An output driven by a literal constant. *)
  | Degenerate_mux of string
      (** A wire whose expression contains a mux with identical arms. *)

val pp_issue : Format.formatter -> issue -> unit

val check : Netlist.elaborated -> issue list
(** Run all checks; issues are returned in a deterministic order. *)
