module Bitvec = Dfv_bitvec.Bitvec

type binop =
  | Add | Sub | Mul
  | Udiv | Urem | Sdiv | Srem
  | And | Or | Xor
  | Shl | Lshr | Ashr
  | Eq | Ne | Ult | Ule | Slt | Sle

type unop = Not | Neg | Red_and | Red_or | Red_xor

type t =
  | Const of Bitvec.t
  | Signal of string
  | Unop of unop * t
  | Binop of binop * t * t
  | Mux of t * t * t
  | Slice of t * int * int
  | Concat of t list
  | Zext of t * int
  | Sext of t * int
  | Repeat of t * int
  | Mem_read of string * t

(* --- DSL -------------------------------------------------------------- *)

let const ~width v = Const (Bitvec.create ~width v)
let of_bitvec bv = Const bv
let sig_ n = Signal n
let mux s a b = Mux (s, a, b)
let slice e ~hi ~lo = Slice (e, hi, lo)
let bit e i = Slice (e, i, i)
let concat es = Concat es
let zext e w = Zext (e, w)
let sext e w = Sext (e, w)
let repeat e n = Repeat (e, n)
let mem_read m a = Mem_read (m, a)

let ( +: ) a b = Binop (Add, a, b)
let ( -: ) a b = Binop (Sub, a, b)
let ( *: ) a b = Binop (Mul, a, b)
let ( /: ) a b = Binop (Udiv, a, b)
let ( %: ) a b = Binop (Urem, a, b)
let ( &: ) a b = Binop (And, a, b)
let ( |: ) a b = Binop (Or, a, b)
let ( ^: ) a b = Binop (Xor, a, b)
let ( ~: ) a = Unop (Not, a)
let negate a = Unop (Neg, a)
let ( <<: ) a b = Binop (Shl, a, b)
let ( >>: ) a b = Binop (Lshr, a, b)
let ( >>+ ) a b = Binop (Ashr, a, b)
let ( ==: ) a b = Binop (Eq, a, b)
let ( <>: ) a b = Binop (Ne, a, b)
let ( <: ) a b = Binop (Ult, a, b)
let ( <=: ) a b = Binop (Ule, a, b)
let ( <+ ) a b = Binop (Slt, a, b)
let ( <=+ ) a b = Binop (Sle, a, b)
let red_and a = Unop (Red_and, a)
let red_or a = Unop (Red_or, a)
let red_xor a = Unop (Red_xor, a)

(* --- analysis ---------------------------------------------------------- *)

exception Width_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Width_error s)) fmt

let binop_name = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Udiv -> "/" | Urem -> "%"
  | Sdiv -> "/s" | Srem -> "%s" | And -> "&" | Or -> "|" | Xor -> "^"
  | Shl -> "<<" | Lshr -> ">>" | Ashr -> ">>>" | Eq -> "==" | Ne -> "!="
  | Ult -> "<" | Ule -> "<=" | Slt -> "<s" | Sle -> "<=s"

let unop_name = function
  | Not -> "~" | Neg -> "-" | Red_and -> "&" | Red_or -> "|" | Red_xor -> "^"

let rec width_in sig_w mem_w e =
  match e with
  | Const bv -> Bitvec.width bv
  | Signal n -> sig_w n
  | Unop ((Not | Neg), a) -> width_in sig_w mem_w a
  | Unop ((Red_and | Red_or | Red_xor), a) ->
    ignore (width_in sig_w mem_w a);
    1
  | Binop (((Add | Sub | Mul | Udiv | Urem | Sdiv | Srem | And | Or | Xor) as op), a, b) ->
    let wa = width_in sig_w mem_w a and wb = width_in sig_w mem_w b in
    if wa <> wb then
      fail "operator %s: operand widths %d and %d differ" (binop_name op) wa wb;
    wa
  | Binop ((Shl | Lshr | Ashr), a, b) ->
    ignore (width_in sig_w mem_w b);
    width_in sig_w mem_w a
  | Binop (((Eq | Ne | Ult | Ule | Slt | Sle) as op), a, b) ->
    let wa = width_in sig_w mem_w a and wb = width_in sig_w mem_w b in
    if wa <> wb then
      fail "comparison %s: operand widths %d and %d differ" (binop_name op) wa
        wb;
    1
  | Mux (s, a, b) ->
    let ws = width_in sig_w mem_w s in
    if ws <> 1 then fail "mux select must be 1 bit, got %d" ws;
    let wa = width_in sig_w mem_w a and wb = width_in sig_w mem_w b in
    if wa <> wb then fail "mux arms have widths %d and %d" wa wb;
    wa
  | Slice (a, hi, lo) ->
    let wa = width_in sig_w mem_w a in
    if lo < 0 || hi < lo || hi >= wa then
      fail "slice [%d:%d] out of range for width %d" hi lo wa;
    hi - lo + 1
  | Concat [] -> fail "empty concat"
  | Concat es ->
    List.fold_left (fun acc e -> acc + width_in sig_w mem_w e) 0 es
  | Zext (a, w) | Sext (a, w) ->
    let wa = width_in sig_w mem_w a in
    if w < wa then fail "extension to %d narrower than operand width %d" w wa;
    w
  | Repeat (a, n) ->
    if n < 1 then fail "repeat count %d" n;
    n * width_in sig_w mem_w a
  | Mem_read (m, a) ->
    ignore (width_in sig_w mem_w a);
    mem_w m

let rec fold_signals acc e =
  match e with
  | Const _ -> acc
  | Signal n -> n :: acc
  | Unop (_, a) | Slice (a, _, _) | Zext (a, _) | Sext (a, _) | Repeat (a, _) ->
    fold_signals acc a
  | Binop (_, a, b) -> fold_signals (fold_signals acc a) b
  | Mux (s, a, b) -> fold_signals (fold_signals (fold_signals acc s) a) b
  | Concat es -> List.fold_left fold_signals acc es
  | Mem_read (_, a) -> fold_signals acc a

let signals e = List.sort_uniq compare (fold_signals [] e)

let rec fold_mems acc e =
  match e with
  | Const _ | Signal _ -> acc
  | Unop (_, a) | Slice (a, _, _) | Zext (a, _) | Sext (a, _) | Repeat (a, _) ->
    fold_mems acc a
  | Binop (_, a, b) -> fold_mems (fold_mems acc a) b
  | Mux (s, a, b) -> fold_mems (fold_mems (fold_mems acc s) a) b
  | Concat es -> List.fold_left fold_mems acc es
  | Mem_read (m, a) -> fold_mems (m :: acc) a

let memories e = List.sort_uniq compare (fold_mems [] e)

let rec map_signals f e =
  match e with
  | Const _ -> e
  | Signal n -> f n
  | Unop (op, a) -> Unop (op, map_signals f a)
  | Binop (op, a, b) -> Binop (op, map_signals f a, map_signals f b)
  | Mux (s, a, b) -> Mux (map_signals f s, map_signals f a, map_signals f b)
  | Slice (a, hi, lo) -> Slice (map_signals f a, hi, lo)
  | Concat es -> Concat (List.map (map_signals f) es)
  | Zext (a, w) -> Zext (map_signals f a, w)
  | Sext (a, w) -> Sext (map_signals f a, w)
  | Repeat (a, n) -> Repeat (map_signals f a, n)
  | Mem_read (m, a) -> Mem_read (m, map_signals f a)

let rec rename_memories f e =
  match e with
  | Const _ | Signal _ -> e
  | Unop (op, a) -> Unop (op, rename_memories f a)
  | Binop (op, a, b) -> Binop (op, rename_memories f a, rename_memories f b)
  | Mux (s, a, b) ->
    Mux (rename_memories f s, rename_memories f a, rename_memories f b)
  | Slice (a, hi, lo) -> Slice (rename_memories f a, hi, lo)
  | Concat es -> Concat (List.map (rename_memories f) es)
  | Zext (a, w) -> Zext (rename_memories f a, w)
  | Sext (a, w) -> Sext (rename_memories f a, w)
  | Repeat (a, n) -> Repeat (rename_memories f a, n)
  | Mem_read (m, a) -> Mem_read (f m, rename_memories f a)

let rec pp fmt e =
  match e with
  | Const bv -> Format.pp_print_string fmt (Bitvec.to_string bv)
  | Signal n -> Format.pp_print_string fmt n
  | Unop (op, a) -> Format.fprintf fmt "%s(%a)" (unop_name op) pp a
  | Binop (op, a, b) ->
    Format.fprintf fmt "(%a %s %a)" pp a (binop_name op) pp b
  | Mux (s, a, b) -> Format.fprintf fmt "(%a ? %a : %a)" pp s pp a pp b
  | Slice (a, hi, lo) -> Format.fprintf fmt "%a[%d:%d]" pp a hi lo
  | Concat es ->
    Format.fprintf fmt "{%a}"
      (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f ", ") pp)
      es
  | Zext (a, w) -> Format.fprintf fmt "zext(%a, %d)" pp a w
  | Sext (a, w) -> Format.fprintf fmt "sext(%a, %d)" pp a w
  | Repeat (a, n) -> Format.fprintf fmt "{%d{%a}}" n pp a
  | Mem_read (m, a) -> Format.fprintf fmt "%s[%a]" m pp a
