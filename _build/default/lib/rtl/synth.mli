(** Synthesis of elaborated RTL into AIG transition functions.

    The sequential equivalence checker works on a time-unrolled AIG; this
    module provides the single-cycle transition function it unrolls: given
    words for the current state (registers and memory words) and the
    cycle's inputs, it produces words for the outputs and the next state.
    Memories are bit-blasted word-per-word with address decoders, so they
    must be small on the SEC path (the co-simulation path has no such
    limit). *)

type state_id =
  | Reg of string
  | Mem_word of string * int  (** memory name, word index *)

val compare_state_id : state_id -> state_id -> int
val state_id_name : state_id -> string

val state_elements :
  Netlist.elaborated -> (state_id * int * Dfv_bitvec.Bitvec.t) list
(** The design's state: each element with its width and initial value,
    in a fixed deterministic order. *)

val build :
  Netlist.elaborated ->
  g:Dfv_aig.Aig.t ->
  inputs:(string -> Dfv_aig.Word.w) ->
  state:(state_id -> Dfv_aig.Word.w) ->
  (string * Dfv_aig.Word.w) list * (state_id * Dfv_aig.Word.w) list
(** [build design ~g ~inputs ~state] instantiates one cycle of the design
    in [g].  [inputs] must supply a word of the declared width for every
    input port; [state] likewise for every state element.  Returns the
    output port words and the next-state words (same order as
    {!state_elements}).

    Semantics match {!Sim} bit-for-bit with two documented exceptions
    that SEC callers must constrain away: division by zero (the AIG is
    total: quotient all-ones, remainder = dividend; the simulator raises)
    and nothing else. *)
