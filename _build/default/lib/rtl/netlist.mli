(** RTL module definitions, hierarchy and elaboration.

    A module has input ports, named combinational wires, registers (all
    clocked by one implicit clock, with optional enables and synchronous
    initial values established at reset), memories with synchronous write
    ports and asynchronous read (via {!Expr.Mem_read}), output ports
    bound to expressions, and instances of other modules.

    {!elaborate} flattens the hierarchy into a single-level module whose
    internal names are prefixed by the instance path ([u0.acc]), checks
    all widths, and topologically sorts the combinational logic —
    rejecting combinational cycles.  The simulator and the AIG
    synthesizer both consume elaborated modules. *)

type port = { port_name : string; port_width : int }

type reg = {
  reg_name : string;
  reg_width : int;
  init : Dfv_bitvec.Bitvec.t;
  next : Expr.t;
  enable : Expr.t option;  (** update only when this 1-bit expr is 1 *)
}

type write_port = { wr_enable : Expr.t; wr_addr : Expr.t; wr_data : Expr.t }

type memory = {
  mem_name : string;
  word_width : int;
  mem_size : int;
  writes : write_port list;
  mem_init : Dfv_bitvec.Bitvec.t array option;
      (** Initial contents; all-zero words when [None].  Length must
          equal [mem_size] when given. *)
}

type instance = {
  inst_name : string;
  inst_module : t;
  connections : (string * Expr.t) list;
      (** Bindings for the instantiated module's input ports; its output
          ports become parent signals named [inst_name.port]. *)
}

and t = {
  name : string;
  inputs : port list;
  outputs : (string * Expr.t) list;
  wires : (string * Expr.t) list;
  regs : reg list;
  mems : memory list;
  instances : instance list;
}

exception Elaboration_error of string

val empty : string -> t
(** A module with the given name and nothing in it. *)

val reg :
  ?enable:Expr.t ->
  ?init:Dfv_bitvec.Bitvec.t ->
  name:string ->
  width:int ->
  Expr.t ->
  reg
(** Convenience register constructor; [init] defaults to zero. *)

type elaborated = {
  e_name : string;
  e_inputs : port list;
  e_outputs : (string * Expr.t) list;
  e_wires : (string * Expr.t) list;  (** in topological evaluation order *)
  e_regs : reg list;
  e_mems : memory list;
  e_signal_width : string -> int;  (** width of any input/wire/reg *)
}

val elaborate : t -> elaborated
(** Flatten, width-check and schedule a module.  Raises
    {!Elaboration_error} on: duplicate or undriven signal names,
    references to unknown signals or memories, width violations
    (including register next/enable and memory port widths), address
    ports narrower than needed being fine but wider contents mismatches
    rejected, bad memory init length, and combinational cycles. *)

val signal_names : elaborated -> string list
(** All signal names (inputs, wires, registers), sorted. *)
