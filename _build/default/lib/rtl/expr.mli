(** RTL expressions.

    The combinational expression language of the RTL IR.  Semantics are
    Verilog-2001 in explicit form: every operator's result width is
    determined by its operand widths (binary arithmetic requires equal
    widths — extend explicitly with {!zext}/{!sext}, exactly the
    discipline whose absence causes the paper's Fig. 1), predicates are
    1 bit wide, and slicing/concatenation follow part-select rules. *)

type binop =
  | Add | Sub | Mul
  | Udiv | Urem | Sdiv | Srem
  | And | Or | Xor
  | Shl | Lshr | Ashr  (** second operand is the (unsigned) shift amount *)
  | Eq | Ne | Ult | Ule | Slt | Sle

type unop = Not | Neg | Red_and | Red_or | Red_xor

type t =
  | Const of Dfv_bitvec.Bitvec.t
  | Signal of string
      (** Reference to an input, wire, or register by name. *)
  | Unop of unop * t
  | Binop of binop * t * t
  | Mux of t * t * t  (** [Mux (sel, then_, else_)]; [sel] is 1 bit. *)
  | Slice of t * int * int  (** [Slice (e, hi, lo)] *)
  | Concat of t list  (** Head is most significant. *)
  | Zext of t * int
  | Sext of t * int
  | Repeat of t * int
  | Mem_read of string * t
      (** Asynchronous (combinational) memory read port. *)

(** {1 Construction DSL} *)

val const : width:int -> int -> t
val of_bitvec : Dfv_bitvec.Bitvec.t -> t
val sig_ : string -> t
val mux : t -> t -> t -> t
val slice : t -> hi:int -> lo:int -> t
val bit : t -> int -> t
(** [bit e i] is [slice e ~hi:i ~lo:i]. *)

val concat : t list -> t
val zext : t -> int -> t
val sext : t -> int -> t
val repeat : t -> int -> t
val mem_read : string -> t -> t

val ( +: ) : t -> t -> t
val ( -: ) : t -> t -> t
val ( *: ) : t -> t -> t
val ( /: ) : t -> t -> t
(** unsigned division *)

val ( %: ) : t -> t -> t
(** unsigned remainder *)

val ( &: ) : t -> t -> t
val ( |: ) : t -> t -> t
val ( ^: ) : t -> t -> t
val ( ~: ) : t -> t
(** bitwise not *)

val negate : t -> t
val ( <<: ) : t -> t -> t
val ( >>: ) : t -> t -> t
(** logical right shift *)

val ( >>+ ) : t -> t -> t
(** arithmetic right shift *)

val ( ==: ) : t -> t -> t
val ( <>: ) : t -> t -> t
val ( <: ) : t -> t -> t
(** unsigned less-than *)

val ( <=: ) : t -> t -> t
val ( <+ ) : t -> t -> t
(** signed less-than *)

val ( <=+ ) : t -> t -> t
val red_and : t -> t
val red_or : t -> t
val red_xor : t -> t

(** {1 Analysis} *)

exception Width_error of string
(** Raised by {!width_in} on ill-formed expressions. *)

val width_in : (string -> int) -> (string -> int) -> t -> int
(** [width_in signal_width mem_word_width e] computes (and checks) the
    width of [e].  [signal_width name] must give the width of every
    referenced signal; [mem_word_width name] the word width of every
    referenced memory.  Raises {!Width_error} on any rule violation
    (mismatched operand widths, bad slice bounds, non-1-bit mux select,
    zero-width concat, shrinking extension). *)

val signals : t -> string list
(** Names of all signals referenced (deduplicated). *)

val memories : t -> string list
(** Names of all memories read (deduplicated). *)

val map_signals : (string -> t) -> t -> t
(** Substitute every [Signal n] by [f n] (used by the elaborator to
    prefix hierarchical names and splice port connections). *)

val rename_memories : (string -> string) -> t -> t
(** Rename memory references (hierarchy flattening). *)

val pp : Format.formatter -> t -> unit
(** Human-readable rendering (Verilog-like). *)
