module Bitvec = Dfv_bitvec.Bitvec
module Aig = Dfv_aig.Aig
module Word = Dfv_aig.Word
open Netlist

type state_id = Reg of string | Mem_word of string * int

let compare_state_id = compare

let state_id_name = function
  | Reg n -> n
  | Mem_word (m, i) -> Printf.sprintf "%s[%d]" m i

let state_elements design =
  let regs =
    List.map (fun r -> (Reg r.reg_name, r.reg_width, r.init)) design.e_regs
  in
  let mem_words =
    List.concat_map
      (fun m ->
        List.init m.mem_size (fun i ->
            let init =
              match m.mem_init with
              | Some a -> a.(i)
              | None -> Bitvec.zero m.word_width
            in
            (Mem_word (m.mem_name, i), m.word_width, init)))
      design.e_mems
  in
  regs @ mem_words

let build design ~g ~inputs ~state =
  let values : (string, Word.w) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun p ->
      let w = inputs p.port_name in
      if Array.length w <> p.port_width then
        invalid_arg
          (Printf.sprintf "Synth.build: input %s word has width %d, port is %d"
             p.port_name (Array.length w) p.port_width);
      Hashtbl.replace values p.port_name w)
    design.e_inputs;
  List.iter
    (fun r ->
      let w = state (Reg r.reg_name) in
      if Array.length w <> r.reg_width then
        invalid_arg
          (Printf.sprintf "Synth.build: state %s word has width %d, reg is %d"
             r.reg_name (Array.length w) r.reg_width);
      Hashtbl.replace values r.reg_name w)
    design.e_regs;
  let mem_words : (string, Word.w array) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun m ->
      mem_words |> fun tbl ->
      Hashtbl.replace tbl m.mem_name
        (Array.init m.mem_size (fun i -> state (Mem_word (m.mem_name, i)))))
    design.e_mems;
  let rec ev e : Word.w =
    match e with
    | Expr.Const bv -> Word.const bv
    | Expr.Signal n -> Hashtbl.find values n
    | Expr.Unop (op, a) ->
      let va = ev a in
      (match op with
      | Expr.Not -> Word.lognot va
      | Expr.Neg -> Word.neg g va
      | Expr.Red_and -> [| Word.reduce_and g va |]
      | Expr.Red_or -> [| Word.reduce_or g va |]
      | Expr.Red_xor -> [| Word.reduce_xor g va |])
    | Expr.Binop (op, a, b) ->
      let va = ev a and vb = ev b in
      (match op with
      | Expr.Add -> Word.add g va vb
      | Expr.Sub -> Word.sub g va vb
      | Expr.Mul -> Word.mul g va vb
      | Expr.Udiv -> Word.udiv g va vb
      | Expr.Urem -> Word.urem g va vb
      | Expr.Sdiv -> Word.sdiv g va vb
      | Expr.Srem -> Word.srem g va vb
      | Expr.And -> Word.logand g va vb
      | Expr.Or -> Word.logor g va vb
      | Expr.Xor -> Word.logxor g va vb
      | Expr.Shl -> Word.shift_left_var g va vb
      | Expr.Lshr -> Word.shift_right_logical_var g va vb
      | Expr.Ashr -> Word.shift_right_arith_var g va vb
      | Expr.Eq -> [| Word.eq g va vb |]
      | Expr.Ne -> [| Word.ne g va vb |]
      | Expr.Ult -> [| Word.ult g va vb |]
      | Expr.Ule -> [| Word.ule g va vb |]
      | Expr.Slt -> [| Word.slt g va vb |]
      | Expr.Sle -> [| Word.sle g va vb |])
    | Expr.Mux (s, a, b) ->
      let vs = ev s in
      Word.mux g ~sel:vs.(0) (ev a) (ev b)
    | Expr.Slice (a, hi, lo) -> Word.select (ev a) ~hi ~lo
    | Expr.Concat es -> Word.concat (List.map ev es)
    | Expr.Zext (a, w) -> Word.uresize (ev a) w
    | Expr.Sext (a, w) -> Word.sresize (ev a) w
    | Expr.Repeat (a, n) -> Word.repeat (ev a) n
    | Expr.Mem_read (m, a) ->
      let words = Hashtbl.find mem_words m in
      let default = Array.make (Array.length words.(0)) Aig.false_ in
      Word.mux_index g ~default (ev a) words
  in
  (* Wires in topological order. *)
  List.iter (fun (n, e) -> Hashtbl.replace values n (ev e)) design.e_wires;
  let outputs = List.map (fun (n, e) -> (n, ev e)) design.e_outputs in
  (* Next state. *)
  let reg_next =
    List.map
      (fun r ->
        let cur = Hashtbl.find values r.reg_name in
        let nxt = ev r.next in
        let nxt =
          match r.enable with
          | None -> nxt
          | Some e ->
            let en = ev e in
            Word.mux g ~sel:en.(0) nxt cur
        in
        (Reg r.reg_name, nxt))
      design.e_regs
  in
  let mem_next =
    List.concat_map
      (fun m ->
        let words = Hashtbl.find mem_words m.mem_name in
        (* Evaluate each write port once; apply to every word with an
           address decoder.  Later ports override earlier ones. *)
        let ports =
          List.map
            (fun wp -> (ev wp.wr_enable, ev wp.wr_addr, ev wp.wr_data))
            m.writes
        in
        List.init m.mem_size (fun i ->
            let next_word =
              List.fold_left
                (fun acc (en, addr, data) ->
                  let iw =
                    Word.const (Bitvec.create ~width:(Array.length addr) i)
                  in
                  let hit = Aig.and_ g en.(0) (Word.eq g addr iw) in
                  Word.mux g ~sel:hit data acc)
                words.(i) ports
            in
            (Mem_word (m.mem_name, i), next_word)))
      design.e_mems
  in
  (outputs, reg_next @ mem_next)
