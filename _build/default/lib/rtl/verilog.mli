(** Verilog-2001 emission.

    Renders an elaborated netlist as a synthesizable Verilog module, so
    designs authored against this library's IR can leave the ecosystem
    (commercial simulators, synthesis, LEC against a hand-written RTL).
    The mapping is deliberately explicit about the semantics the IR
    defines:

    - all nets are unsigned [wire]/[reg] vectors; signed operators are
      rendered through [$signed(...)] at their use sites, so there is no
      reliance on Verilog's self-determined signedness rules (the very
      rules Section 3.1.1 shows are easy to get wrong);
    - sign/zero extension is emitted as explicit replication-concat
      ([{{n{bit}}, e}]);
    - registers use one implicit [clk] and become
      [always @(posedge clk)] processes; initial values become an
      [initial] block (matching the simulator's reset state);
    - memories become unpacked [reg] arrays with synchronous write
      processes and continuous-assign asynchronous reads;
    - hierarchical names from elaboration ([u0.acc]) are sanitized to
      legal identifiers ([u0_acc]), uniquely.

    Dynamic shift amounts wider than needed, and division, follow the
    simulator semantics documented in {!Sim}. *)

val emit : Netlist.elaborated -> string
(** The complete Verilog module text.  Port identifiers are the
    sanitized signal names (collisions resolved by numeric suffix,
    outputs in their own namespace). *)
