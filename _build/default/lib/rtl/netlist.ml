module Bitvec = Dfv_bitvec.Bitvec

type port = { port_name : string; port_width : int }

type reg = {
  reg_name : string;
  reg_width : int;
  init : Bitvec.t;
  next : Expr.t;
  enable : Expr.t option;
}

type write_port = { wr_enable : Expr.t; wr_addr : Expr.t; wr_data : Expr.t }

type memory = {
  mem_name : string;
  word_width : int;
  mem_size : int;
  writes : write_port list;
  mem_init : Bitvec.t array option;
}

type instance = {
  inst_name : string;
  inst_module : t;
  connections : (string * Expr.t) list;
}

and t = {
  name : string;
  inputs : port list;
  outputs : (string * Expr.t) list;
  wires : (string * Expr.t) list;
  regs : reg list;
  mems : memory list;
  instances : instance list;
}

exception Elaboration_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Elaboration_error s)) fmt

let empty name =
  { name; inputs = []; outputs = []; wires = []; regs = []; mems = []; instances = [] }

let reg ?enable ?init ~name ~width next =
  let init = match init with Some i -> i | None -> Bitvec.zero width in
  if Bitvec.width init <> width then
    fail "register %s: init width %d, declared width %d" name
      (Bitvec.width init) width;
  { reg_name = name; reg_width = width; init; next; enable }

(* --- flattening -------------------------------------------------------- *)

(* Flatten instances: internal names of an instance [u] become [u.name]
   in the parent; the instance's input ports become parent wires bound to
   the connection expressions; its outputs become parent wires [u.out]. *)
let rec flatten (m : t) : t =
  let flat_instances =
    List.map
      (fun inst ->
        let sub = flatten inst.inst_module in
        let p n = inst.inst_name ^ "." ^ n in
        let rename_expr e =
          Expr.rename_memories p (Expr.map_signals (fun n -> Expr.Signal (p n)) e)
        in
        (* Input ports become wires driven by connection expressions
           (which reference *parent* signals, so no renaming). *)
        let input_wires =
          List.map
            (fun port ->
              match List.assoc_opt port.port_name inst.connections with
              | Some e -> (p port.port_name, e)
              | None ->
                fail "instance %s of %s: input port %s not connected"
                  inst.inst_name sub.name port.port_name)
            sub.inputs
        in
        let extra =
          List.filter
            (fun (n, _) ->
              not (List.exists (fun port -> port.port_name = n) sub.inputs))
            inst.connections
        in
        (match extra with
        | (n, _) :: _ ->
          fail "instance %s of %s: no input port named %s" inst.inst_name
            sub.name n
        | [] -> ());
        let output_wires =
          List.map (fun (n, e) -> (p n, rename_expr e)) sub.outputs
        in
        let wires =
          input_wires @ output_wires
          @ List.map (fun (n, e) -> (p n, rename_expr e)) sub.wires
        in
        let regs =
          List.map
            (fun r ->
              {
                r with
                reg_name = p r.reg_name;
                next = rename_expr r.next;
                enable = Option.map rename_expr r.enable;
              })
            sub.regs
        in
        let mems =
          List.map
            (fun mem ->
              {
                mem with
                mem_name = p mem.mem_name;
                writes =
                  List.map
                    (fun w ->
                      {
                        wr_enable = rename_expr w.wr_enable;
                        wr_addr = rename_expr w.wr_addr;
                        wr_data = rename_expr w.wr_data;
                      })
                    mem.writes;
              })
            sub.mems
        in
        (wires, regs, mems))
      m.instances
  in
  let inst_wires = List.concat_map (fun (w, _, _) -> w) flat_instances in
  let inst_regs = List.concat_map (fun (_, r, _) -> r) flat_instances in
  let inst_mems = List.concat_map (fun (_, _, mm) -> mm) flat_instances in
  {
    m with
    wires = m.wires @ inst_wires;
    regs = m.regs @ inst_regs;
    mems = m.mems @ inst_mems;
    instances = [];
  }

(* --- elaboration ------------------------------------------------------- *)

type elaborated = {
  e_name : string;
  e_inputs : port list;
  e_outputs : (string * Expr.t) list;
  e_wires : (string * Expr.t) list;
  e_regs : reg list;
  e_mems : memory list;
  e_signal_width : string -> int;
}

let address_width size =
  let rec go w = if 1 lsl w >= size then w else go (w + 1) in
  max 1 (go 0)

let elaborate (m : t) : elaborated =
  let m = flatten m in
  (* Signal table: name -> width. *)
  let widths : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let declare kind name width =
    if Hashtbl.mem widths name then fail "duplicate signal name %s (%s)" name kind;
    if width < 1 then fail "%s %s has width %d" kind name width;
    Hashtbl.add widths name width
  in
  List.iter (fun p -> declare "input" p.port_name p.port_width) m.inputs;
  List.iter (fun r -> declare "register" r.reg_name r.reg_width) m.regs;
  let mem_widths : (string, int * int) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun mem ->
      if Hashtbl.mem mem_widths mem.mem_name then
        fail "duplicate memory name %s" mem.mem_name;
      if mem.mem_size < 1 then fail "memory %s has size %d" mem.mem_name mem.mem_size;
      if mem.word_width < 1 then
        fail "memory %s has word width %d" mem.mem_name mem.word_width;
      (match mem.mem_init with
      | Some init when Array.length init <> mem.mem_size ->
        fail "memory %s: init has %d words, size is %d" mem.mem_name
          (Array.length init) mem.mem_size
      | Some init ->
        Array.iteri
          (fun i w ->
            if Bitvec.width w <> mem.word_width then
              fail "memory %s: init word %d has width %d, expected %d"
                mem.mem_name i (Bitvec.width w) mem.word_width)
          init
      | None -> ());
      Hashtbl.add mem_widths mem.mem_name (mem.word_width, mem.mem_size))
    m.mems;
  (* Wires may be declared in any order; detect duplicates now, widths
     computed after everything is declared. *)
  let wire_exprs : (string, Expr.t) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (n, e) ->
      if Hashtbl.mem widths n || Hashtbl.mem wire_exprs n then
        fail "duplicate signal name %s (wire)" n;
      Hashtbl.add wire_exprs n e)
    m.wires;
  let sig_width name =
    match Hashtbl.find_opt widths name with
    | Some w -> w
    | None -> fail "reference to unknown signal %s" name
  and mem_word name =
    match Hashtbl.find_opt mem_widths name with
    | Some (w, _) -> w
    | None -> fail "reference to unknown memory %s" name
  in
  (* Topologically order the wires: a wire depends on the wires its
     expression references.  Registers, inputs and memories are state —
     no dependency edges. *)
  let order : (string * Expr.t) list ref = ref [] in
  let visiting : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let visited : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  let rec visit name =
    if not (Hashtbl.mem visited name) then begin
      if Hashtbl.mem visiting name then
        fail "combinational cycle through wire %s" name;
      match Hashtbl.find_opt wire_exprs name with
      | None -> () (* input / register: no scheduling needed *)
      | Some e ->
        Hashtbl.add visiting name ();
        List.iter visit (Expr.signals e);
        Hashtbl.remove visiting name;
        Hashtbl.add visited name ();
        order := (name, e) :: !order
    end
  in
  Hashtbl.iter (fun n _ -> visit n) wire_exprs;
  let e_wires = List.rev !order in
  (* Now all wires can get widths, in dependency order. *)
  List.iter
    (fun (n, e) ->
      let w =
        try Expr.width_in sig_width mem_word e
        with Expr.Width_error msg -> fail "wire %s: %s" n msg
      in
      declare "wire" n w)
    e_wires;
  (* Check registers. *)
  List.iter
    (fun r ->
      let wn =
        try Expr.width_in sig_width mem_word r.next
        with Expr.Width_error msg -> fail "register %s next: %s" r.reg_name msg
      in
      if wn <> r.reg_width then
        fail "register %s: next width %d, declared %d" r.reg_name wn r.reg_width;
      match r.enable with
      | None -> ()
      | Some e ->
        let we =
          try Expr.width_in sig_width mem_word e
          with Expr.Width_error msg ->
            fail "register %s enable: %s" r.reg_name msg
        in
        if we <> 1 then
          fail "register %s: enable width %d, must be 1" r.reg_name we)
    m.regs;
  (* Check memory write ports. *)
  List.iter
    (fun mem ->
      let aw = address_width mem.mem_size in
      List.iteri
        (fun i wp ->
          let check what e expect =
            let w =
              try Expr.width_in sig_width mem_word e
              with Expr.Width_error msg ->
                fail "memory %s write port %d %s: %s" mem.mem_name i what msg
            in
            if w <> expect then
              fail "memory %s write port %d: %s width %d, expected %d"
                mem.mem_name i what w expect
          in
          check "enable" wp.wr_enable 1;
          check "addr" wp.wr_addr aw;
          check "data" wp.wr_data mem.word_width)
        mem.writes)
    m.mems;
  (* Check memory read address widths used inside expressions: enforced
     lazily — Mem_read addresses may be any width; the simulator masks.
     We do validate outputs. *)
  List.iter
    (fun (n, e) ->
      try ignore (Expr.width_in sig_width mem_word e)
      with Expr.Width_error msg -> fail "output %s: %s" n msg)
    m.outputs;
  {
    e_name = m.name;
    e_inputs = m.inputs;
    e_outputs = m.outputs;
    e_wires;
    e_regs = m.regs;
    e_mems = m.mems;
    e_signal_width = sig_width;
  }

let signal_names e =
  List.sort compare
    (List.map (fun p -> p.port_name) e.e_inputs
    @ List.map fst e.e_wires
    @ List.map (fun r -> r.reg_name) e.e_regs)
