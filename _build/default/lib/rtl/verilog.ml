module Bitvec = Dfv_bitvec.Bitvec
open Netlist

(* --- identifier sanitation ------------------------------------------- *)

let sanitize name =
  let b = Buffer.create (String.length name) in
  String.iteri
    (fun i c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '_' -> Buffer.add_char b c
      | '0' .. '9' -> if i = 0 then Buffer.add_string b "_0" else Buffer.add_char b c
      | _ -> Buffer.add_char b '_')
    name;
  if Buffer.length b = 0 then "_" else Buffer.contents b

let keywords =
  [ "module"; "endmodule"; "input"; "output"; "wire"; "reg"; "assign";
    "always"; "initial"; "begin"; "end"; "if"; "else"; "posedge"; "negedge";
    "integer"; "for"; "signed"; "case"; "endcase"; "default"; "parameter" ]

type names = { table : (string, string) Hashtbl.t; used : (string, unit) Hashtbl.t }

let make_names () =
  let used = Hashtbl.create 64 in
  List.iter (fun k -> Hashtbl.replace used k ()) keywords;
  Hashtbl.replace used "clk" ();
  { table = Hashtbl.create 64; used }

(* [key] identifies the IR object; [base] is the preferred identifier.
   Outputs live in their own key namespace so an output may share its
   name with an internal signal without colliding. *)
let intern_keyed names key base =
  match Hashtbl.find_opt names.table key with
  | Some s -> s
  | None ->
    let base = sanitize base in
    let rec pick i =
      let candidate = if i = 0 then base else Printf.sprintf "%s_%d" base i in
      if Hashtbl.mem names.used candidate then pick (i + 1) else candidate
    in
    let s = pick 0 in
    Hashtbl.replace names.used s ();
    Hashtbl.replace names.table key s;
    s

let intern names original = intern_keyed names original original
let intern_out names n = intern_keyed names ("out\x00" ^ n) n

(* --- expression rendering --------------------------------------------- *)

type ctx = {
  design : elaborated;
  names : names;
  temps : Buffer.t; (* declarations + assigns for hoisted subexpressions *)
  mutable ntemps : int;
  mem_of : string -> memory;
}

let range w = if w = 1 then "" else Printf.sprintf "[%d:0] " (w - 1)

let width_of ctx e =
  Expr.width_in ctx.design.e_signal_width
    (fun m -> (ctx.mem_of m).word_width)
    e

(* Hoist an expression into a named wire (needed when Verilog requires an
   identifier, e.g. as the base of a part-select). *)
let rec hoist ctx e =
  match e with
  | Expr.Signal n -> intern ctx.names n
  | _ ->
    let w = width_of ctx e in
    let name = Printf.sprintf "_t%d" ctx.ntemps in
    ctx.ntemps <- ctx.ntemps + 1;
    Buffer.add_string ctx.temps
      (Printf.sprintf "  wire %s%s;\n  assign %s = %s;\n" (range w) name name
         (render ctx e));
    name

and render ctx (e : Expr.t) : string =
  match e with
  | Expr.Const bv -> Bitvec.to_string bv
  | Expr.Signal n -> intern ctx.names n
  | Expr.Unop (op, a) -> (
    let ra = render ctx a in
    match op with
    | Expr.Not -> Printf.sprintf "(~%s)" ra
    | Expr.Neg -> Printf.sprintf "(-%s)" ra
    | Expr.Red_and -> Printf.sprintf "(&%s)" ra
    | Expr.Red_or -> Printf.sprintf "(|%s)" ra
    | Expr.Red_xor -> Printf.sprintf "(^%s)" ra)
  | Expr.Binop (op, a, b) -> (
    let ra = render ctx a and rb = render ctx b in
    let u fmt = Printf.sprintf fmt ra rb in
    let s fmt = Printf.sprintf fmt ra rb in
    match op with
    | Expr.Add -> u "(%s + %s)"
    | Expr.Sub -> u "(%s - %s)"
    | Expr.Mul -> u "(%s * %s)"
    | Expr.Udiv -> u "(%s / %s)"
    | Expr.Urem -> u "(%s %% %s)"
    | Expr.Sdiv -> s "($signed(%s) / $signed(%s))"
    | Expr.Srem -> s "($signed(%s) %% $signed(%s))"
    | Expr.And -> u "(%s & %s)"
    | Expr.Or -> u "(%s | %s)"
    | Expr.Xor -> u "(%s ^ %s)"
    | Expr.Shl -> u "(%s << %s)"
    | Expr.Lshr -> u "(%s >> %s)"
    | Expr.Ashr -> s "($signed(%s) >>> %s)"
    | Expr.Eq -> u "(%s == %s)"
    | Expr.Ne -> u "(%s != %s)"
    | Expr.Ult -> u "(%s < %s)"
    | Expr.Ule -> u "(%s <= %s)"
    | Expr.Slt -> s "($signed(%s) < $signed(%s))"
    | Expr.Sle -> s "($signed(%s) <= $signed(%s))")
  | Expr.Mux (sel, a, b) ->
    Printf.sprintf "(%s ? %s : %s)" (render ctx sel) (render ctx a)
      (render ctx b)
  | Expr.Slice (a, hi, lo) ->
    let base = hoist ctx a in
    if hi = lo then Printf.sprintf "%s[%d]" base hi
    else Printf.sprintf "%s[%d:%d]" base hi lo
  | Expr.Concat parts ->
    Printf.sprintf "{%s}" (String.concat ", " (List.map (render ctx) parts))
  | Expr.Zext (a, w) ->
    let wa = width_of ctx a in
    if w = wa then render ctx a
    else Printf.sprintf "{%d'd0, %s}" (w - wa) (render ctx a)
  | Expr.Sext (a, w) ->
    let wa = width_of ctx a in
    if w = wa then render ctx a
    else begin
      let base = hoist ctx a in
      Printf.sprintf "{{%d{%s[%d]}}, %s}" (w - wa) base (wa - 1) base
    end
  | Expr.Repeat (a, n) -> Printf.sprintf "{%d{%s}}" n (render ctx a)
  | Expr.Mem_read (m, addr) ->
    let mem = ctx.mem_of m in
    let mname = intern ctx.names m in
    let ra = hoist ctx addr in
    (* The IR defines out-of-range reads as zero (Verilog would give x). *)
    Printf.sprintf "((%s < %d) ? %s[%s] : %d'd0)" ra mem.mem_size mname ra
      mem.word_width

(* --- module emission ---------------------------------------------------- *)

let emit (d : elaborated) =
  let names = make_names () in
  let mem_of n =
    match List.find_opt (fun m -> m.mem_name = n) d.e_mems with
    | Some m -> m
    | None -> invalid_arg ("Verilog.emit: unknown memory " ^ n)
  in
  let ctx = { design = d; names; temps = Buffer.create 256; ntemps = 0; mem_of } in
  (* Reserve port names first so they win the pretty identifiers. *)
  List.iter (fun p -> ignore (intern names p.port_name)) d.e_inputs;
  List.iter (fun (n, _) -> ignore (intern_out names n)) d.e_outputs;
  let body = Buffer.create 1024 in
  (* Wires. *)
  List.iter
    (fun (n, e) ->
      let w = d.e_signal_width n in
      let rhs = render ctx e in
      Buffer.add_string body
        (Printf.sprintf "  wire %s%s;\n  assign %s = %s;\n" (range w)
           (intern names n) (intern names n) rhs))
    d.e_wires;
  (* Registers. *)
  List.iter
    (fun r ->
      let name = intern names r.reg_name in
      Buffer.add_string body
        (Printf.sprintf "  reg %s%s;\n  initial %s = %s;\n" (range r.reg_width)
           name name (Bitvec.to_string r.init));
      let next = render ctx r.next in
      let update = Printf.sprintf "%s <= %s;" name next in
      let guarded =
        match r.enable with
        | None -> Printf.sprintf "    %s\n" update
        | Some en -> Printf.sprintf "    if (%s) %s\n" (render ctx en) update
      in
      Buffer.add_string body
        (Printf.sprintf "  always @(posedge clk) begin\n%s  end\n" guarded))
    d.e_regs;
  (* Memories. *)
  List.iter
    (fun m ->
      let name = intern names m.mem_name in
      Buffer.add_string body
        (Printf.sprintf "  reg %s%s [0:%d];\n" (range m.word_width) name
           (m.mem_size - 1));
      (* Initial contents. *)
      let idx = Printf.sprintf "_i_%s" name in
      Buffer.add_string body (Printf.sprintf "  integer %s;\n" idx);
      (match m.mem_init with
      | None ->
        Buffer.add_string body
          (Printf.sprintf
             "  initial for (%s = 0; %s < %d; %s = %s + 1) %s[%s] = %d'd0;\n"
             idx idx m.mem_size idx idx name idx m.word_width)
      | Some init ->
        Buffer.add_string body "  initial begin\n";
        Array.iteri
          (fun i v ->
            Buffer.add_string body
              (Printf.sprintf "    %s[%d] = %s;\n" name i (Bitvec.to_string v)))
          init;
        Buffer.add_string body "  end\n");
      List.iter
        (fun wp ->
          Buffer.add_string body
            (Printf.sprintf
               "  always @(posedge clk) begin\n    if (%s) %s[%s] <= %s;\n  end\n"
               (render ctx wp.wr_enable) name (render ctx wp.wr_addr)
               (render ctx wp.wr_data)))
        m.writes)
    d.e_mems;
  (* Outputs. *)
  List.iter
    (fun (n, e) ->
      Buffer.add_string body
        (Printf.sprintf "  assign %s = %s;\n" (intern_out names n)
           (render ctx e)))
    d.e_outputs;
  (* Header: needs output widths, computed through the checker. *)
  let out_width e = width_of ctx e in
  let ports =
    ("input wire clk"
    :: List.map
         (fun p ->
           Printf.sprintf "input wire %s%s" (range p.port_width)
             (intern names p.port_name))
         d.e_inputs)
    @ List.map
        (fun (n, e) ->
          Printf.sprintf "output wire %s%s" (range (out_width e))
            (intern_out names n))
        d.e_outputs
  in
  Printf.sprintf
    "// Generated from the dfv RTL IR; semantics notes in Verilog.mli.\n\
     module %s(\n  %s\n);\n%s%s\nendmodule\n"
    (sanitize d.e_name)
    (String.concat ",\n  " ports)
    (Buffer.contents ctx.temps) (Buffer.contents body)
