(** Word-level construction over AIGs.

    Bit-blasting of the RTL/HWIR operators onto {!Aig} literals.  A word
    is an array of AIG literals, LSB first.  Every operator here mirrors
    one in {!Dfv_bitvec.Bitvec}, and the test suite checks them against
    each other exhaustively at small widths and randomly at large ones —
    the consistency web that makes the equivalence checker trustworthy. *)

type w = Aig.lit array
(** A word: AIG literals, LSB first.  Width is the array length. *)

val const : Dfv_bitvec.Bitvec.t -> w
(** Constant word from a bit-vector value. *)

val inputs : ?name:string -> Aig.t -> int -> w
(** [inputs g n] allocates [n] fresh primary inputs as a word.  Inputs
    are named [name[i]] when [name] is given. *)

val width : w -> int

val to_bitvec : Aig.t -> bool array -> w -> Dfv_bitvec.Bitvec.t
(** Read a word's value out of a {!Aig.simulate} node-value array. *)

(** {1 Bitwise} *)

val lognot : w -> w
val logand : Aig.t -> w -> w -> w
val logor : Aig.t -> w -> w -> w
val logxor : Aig.t -> w -> w -> w

(** {1 Structure} *)

val select : w -> hi:int -> lo:int -> w
val concat : w list -> w
(** Head of the list is the most significant part (Verilog [{...}]). *)

val uresize : w -> int -> w
val sresize : w -> int -> w
val repeat : w -> int -> w

(** {1 Arithmetic} *)

val add : Aig.t -> w -> w -> w
val sub : Aig.t -> w -> w -> w
val neg : Aig.t -> w -> w
val mul : Aig.t -> w -> w -> w
val udiv : Aig.t -> w -> w -> w
(** Combinational restoring divider.  Division by zero yields all-ones
    (a fixed, documented total semantics; the RTL simulator raises
    instead, so SEC flows add a nonzero-divisor constraint). *)

val urem : Aig.t -> w -> w -> w
(** Remainder from the restoring divider; by-zero yields the dividend. *)

val sdiv : Aig.t -> w -> w -> w
(** Signed division truncating toward zero, built on {!udiv} with sign
    correction.  By-zero follows {!udiv} on the magnitudes. *)

val srem : Aig.t -> w -> w -> w
(** Signed remainder with the sign of the dividend. *)

(** {1 Shifts} *)

val shift_left : Aig.t -> w -> int -> w
val shift_right_logical : Aig.t -> w -> int -> w
val shift_right_arith : Aig.t -> w -> int -> w

val shift_left_var : Aig.t -> w -> w -> w
(** Barrel shifter: shift amount is itself a word.  Amounts [>= width]
    produce zero (matching [Bitvec] semantics for clamped dynamic
    shifts). *)

val shift_right_logical_var : Aig.t -> w -> w -> w
val shift_right_arith_var : Aig.t -> w -> w -> w

(** {1 Predicates (1-bit results)} *)

val eq : Aig.t -> w -> w -> Aig.lit
val ne : Aig.t -> w -> w -> Aig.lit
val ult : Aig.t -> w -> w -> Aig.lit
val ule : Aig.t -> w -> w -> Aig.lit
val slt : Aig.t -> w -> w -> Aig.lit
val sle : Aig.t -> w -> w -> Aig.lit
val reduce_and : Aig.t -> w -> Aig.lit
val reduce_or : Aig.t -> w -> Aig.lit
val reduce_xor : Aig.t -> w -> Aig.lit

(** {1 Selection} *)

val mux : Aig.t -> sel:Aig.lit -> w -> w -> w
(** [mux g ~sel a b] is [a] when [sel] else [b]; widths must match. *)

val mux_index : Aig.t -> default:w -> w -> w array -> w
(** [mux_index g ~default idx words] selects [words.(idx)], or [default]
    when [idx] is out of range — the read-port decoder for memories. *)
