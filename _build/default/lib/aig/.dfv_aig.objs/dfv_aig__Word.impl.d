lib/aig/word.ml: Aig Array Dfv_bitvec List Printf Sys
