lib/aig/aig.ml: Array Dfv_sat Hashtbl List Printf
