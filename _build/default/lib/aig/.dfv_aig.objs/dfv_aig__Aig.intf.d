lib/aig/aig.mli: Dfv_sat
