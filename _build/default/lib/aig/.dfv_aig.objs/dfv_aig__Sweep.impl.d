lib/aig/sweep.ml: Aig Array Dfv_sat Hashtbl List Option Random
