lib/aig/word.mli: Aig Dfv_bitvec
