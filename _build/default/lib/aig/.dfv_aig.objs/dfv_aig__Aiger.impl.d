lib/aig/aiger.ml: Aig Array Buffer List Printf String
