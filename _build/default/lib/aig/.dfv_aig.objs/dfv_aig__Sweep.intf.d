lib/aig/sweep.mli: Aig
