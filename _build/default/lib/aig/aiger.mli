(** AIGER (ASCII, [aag]) interchange.

    Lets miters and synthesized cones leave this ecosystem — to ABC, to
    external SAT/model-checking flows — and lets externally produced
    combinational AIGs come in.  Only the combinational subset is
    supported (no latches): the sequential side of SEC is handled by
    unrolling before export.

    Variables are renumbered on write: inputs first (in creation order),
    then AND nodes in topological order, as mainstream consumers
    expect. *)

val to_string : Aig.t -> outputs:(string * Aig.lit) list -> string
(** Render the cones of the named outputs in [aag] format, with a symbol
    table carrying the input and output names. *)

val write_file : string -> Aig.t -> outputs:(string * Aig.lit) list -> unit

exception Parse_error of string

val of_string : string -> Aig.t * (string * Aig.lit) list
(** Parse an [aag] file (combinational only; latches raise
    {!Parse_error}).  Returns the graph and the named outputs (generated
    names [o0], [o1], ... when the symbol table is absent). *)
