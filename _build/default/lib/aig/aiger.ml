exception Parse_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt

(* --- writing ----------------------------------------------------------- *)

let to_string g ~outputs =
  (* Restrict to the cones of the outputs; renumber inputs first. *)
  let n = Aig.num_nodes g in
  let needed = Array.make n false in
  let rec need node =
    if not needed.(node) then begin
      needed.(node) <- true;
      match Aig.node_fanins g node with
      | Some (a, b) ->
        need (a lsr 1);
        need (b lsr 1)
      | None -> ()
    end
  in
  List.iter (fun (_, l) -> need (l lsr 1)) outputs;
  (* All inputs are declared even if outside the cones: symbol stability
     matters more than minimality for interchange. *)
  let input_nodes = ref [] in
  for node = n - 1 downto 0 do
    if Aig.node_input g node <> None then input_nodes := node :: !input_nodes
  done;
  let input_nodes = !input_nodes in
  let var = Array.make n (-1) in
  let next = ref 1 in
  List.iter
    (fun node ->
      var.(node) <- !next;
      incr next)
    input_nodes;
  let and_nodes = ref [] in
  for node = 0 to n - 1 do
    if needed.(node) && Aig.node_fanins g node <> None then begin
      var.(node) <- !next;
      incr next;
      and_nodes := node :: !and_nodes
    end
  done;
  let and_nodes = List.rev !and_nodes in
  let lit l =
    let node = l lsr 1 in
    if node = 0 then l land 1
    else begin
      let v = var.(node) in
      assert (v > 0);
      (2 * v) lor (l land 1)
    end
  in
  let buf = Buffer.create 1024 in
  let m = !next - 1 in
  Buffer.add_string buf
    (Printf.sprintf "aag %d %d 0 %d %d\n" m (List.length input_nodes)
       (List.length outputs) (List.length and_nodes));
  List.iter
    (fun node -> Buffer.add_string buf (Printf.sprintf "%d\n" (2 * var.(node))))
    input_nodes;
  List.iter
    (fun (_, l) -> Buffer.add_string buf (Printf.sprintf "%d\n" (lit l)))
    outputs;
  List.iter
    (fun node ->
      match Aig.node_fanins g node with
      | Some (a, b) ->
        Buffer.add_string buf
          (Printf.sprintf "%d %d %d\n" (2 * var.(node)) (lit a) (lit b))
      | None -> assert false)
    and_nodes;
  (* Symbol table. *)
  List.iteri
    (fun i node ->
      Buffer.add_string buf
        (Printf.sprintf "i%d %s\n" i
           (match Aig.node_input g node with
           | Some k -> Aig.input_name g k
           | None -> assert false)))
    input_nodes;
  List.iteri
    (fun i (name, _) -> Buffer.add_string buf (Printf.sprintf "o%d %s\n" i name))
    outputs;
  Buffer.contents buf

let write_file path g ~outputs =
  let oc = open_out path in
  output_string oc (to_string g ~outputs);
  close_out oc

(* --- parsing ------------------------------------------------------------ *)

let of_string text =
  let lines =
    String.split_on_char '\n' text
    |> List.map String.trim
    |> List.filter (fun l -> l <> "")
  in
  match lines with
  | [] -> fail "empty file"
  | header :: rest ->
    let m, i, l, o, a =
      match String.split_on_char ' ' header |> List.filter (( <> ) "") with
      | [ "aag"; m; i; l; o; a ] -> (
        match
          ( int_of_string_opt m, int_of_string_opt i, int_of_string_opt l,
            int_of_string_opt o, int_of_string_opt a )
        with
        | Some m, Some i, Some l, Some o, Some a -> (m, i, l, o, a)
        | _ -> fail "bad header numbers")
      | "aig" :: _ -> fail "binary aig format not supported (use aag)"
      | _ -> fail "bad header"
    in
    if l <> 0 then fail "latches are not supported (combinational only)";
    if List.length rest < i + o + a then fail "truncated file";
    let take k lst =
      let rec go k acc = function
        | rest when k = 0 -> (List.rev acc, rest)
        | [] -> fail "truncated file"
        | x :: rest -> go (k - 1) (x :: acc) rest
      in
      go k [] lst
    in
    let input_lines, rest = take i rest in
    let output_lines, rest = take o rest in
    let and_lines, rest = take a rest in
    let symbols =
      List.filter_map
        (fun line ->
          match String.index_opt line ' ' with
          | Some sp
            when String.length line > 1
                 && (line.[0] = 'i' || line.[0] = 'o' || line.[0] = 'l') ->
            Some (String.sub line 0 sp, String.sub line (sp + 1) (String.length line - sp - 1))
          | _ -> None)
        rest
    in
    let g = Aig.create () in
    (* var -> our literal *)
    let map = Array.make (m + 1) (-1) in
    let int_of s =
      match int_of_string_opt s with
      | Some v when v >= 0 -> v
      | _ -> fail "bad literal %s" s
    in
    List.iteri
      (fun idx line ->
        let v = int_of line in
        if v land 1 = 1 || v = 0 then fail "bad input literal %d" v;
        let name =
          match List.assoc_opt (Printf.sprintf "i%d" idx) symbols with
          | Some n -> n
          | None -> Printf.sprintf "i%d" idx
        in
        map.(v lsr 1) <- Aig.input ~name g)
      input_lines;
    let lit v =
      if v lsr 1 > m then fail "literal %d out of range" v;
      if v lsr 1 = 0 then if v land 1 = 1 then Aig.true_ else Aig.false_
      else begin
        let base = map.(v lsr 1) in
        if base < 0 then fail "literal %d used before definition" v;
        base lxor (v land 1)
      end
    in
    List.iter
      (fun line ->
        match
          String.split_on_char ' ' line |> List.filter (( <> ) "") |> List.map int_of
        with
        | [ lhs; r0; r1 ] ->
          if lhs land 1 = 1 then fail "and lhs must be even";
          map.(lhs lsr 1) <- Aig.and_ g (lit r0) (lit r1)
        | _ -> fail "bad and line %s" line)
      and_lines;
    let outputs =
      List.mapi
        (fun idx line ->
          let name =
            match List.assoc_opt (Printf.sprintf "o%d" idx) symbols with
            | Some n -> n
            | None -> Printf.sprintf "o%d" idx
          in
          (name, lit (int_of line)))
        output_lines
    in
    (g, outputs)
