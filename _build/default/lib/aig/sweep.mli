(** SAT sweeping (fraiging).

    Combinational equivalence checking of whole systems routinely defeats
    plain CDCL when the two sides compute the same functions with
    different local structure: the solver must rediscover every internal
    equivalence inside one huge cone.  The standard industrial remedy —
    and a core ingredient of the sequential equivalence checkers the
    paper builds on — is to {e sweep} the graph first: detect candidate
    equivalent node pairs by random simulation, prove each with a small
    local SAT query (incremental, bottom-up, so earlier merges keep later
    queries local), and merge.  The miter of an equivalent pair then
    collapses to constant false structurally.

    {!fraig} rebuilds the graph with all proven-equivalent nodes merged
    and returns a literal translation into the new graph. *)

val fraig :
  ?sim_words:int ->
  ?max_conflicts:int ->
  Aig.t ->
  Aig.t * (Aig.lit -> Aig.lit)
(** [fraig g] returns [(g', sub)] where [sub] maps any literal of [g] to
    an equivalent literal of [g'].  [sim_words] 62-bit random pattern
    words drive candidate detection (default 8, i.e. 496 patterns);
    [max_conflicts] bounds each pairwise SAT query (default 1000 —
    undecided pairs are left unmerged, so the result is always sound). *)
