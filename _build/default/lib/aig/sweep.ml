module S = Dfv_sat.Solver
module L = Dfv_sat.Lit

(* SAT sweeping with counterexample-guided refinement.

   Signatures live on the NEW graph and are maintained incrementally:
   an AND node's signature is the AND of its fanins', so a node created
   at any point (including nodes first built for a query miter and later
   reached by hashing) can have its signature computed lazily.  Candidate
   classes are keyed by the canonical signature (complemented so that the
   first simulated bit is 0 — stable under refinement, which never
   rewrites that bit).  Every refuted query contributes its
   distinguishing input pattern to the signatures, splitting the classes,
   so each spurious collision is paid for once — not once per node. *)

let word_mask = (1 lsl 62) - 1

type state = {
  g' : Aig.t;
  solver : S.t;
  enc : Aig.cnf_map;
  max_conflicts : int;
  mutable sig_words : int array array;
      (* per g' node; [||] = not yet computed *)
  mutable bits_used : int; (* filled bits of the newest word *)
  classes : (int array, Aig.lit list) Hashtbl.t;
  mutable reps : Aig.lit list;
  rnd : Random.State.t;
}

let random_word st =
  (Random.State.bits st.rnd land 0x3FFFFFFF)
  lor ((Random.State.bits st.rnd land 0x3FFFFFFF) lsl 30)
  lor ((Random.State.bits st.rnd land 0x3) lsl 60)

let ensure_capacity st node =
  if node >= Array.length st.sig_words then begin
    let a = Array.make (max 64 (2 * (node + 1))) [||] in
    Array.blit st.sig_words 0 a 0 (Array.length st.sig_words);
    st.sig_words <- a
  end

let sig_length st = Array.length st.sig_words.(0)

(* Force the signature of a g' node, computing missed (miter-born) nodes
   from their fanins. *)
let rec get_sig st node : int array =
  ensure_capacity st node;
  let s = st.sig_words.(node) in
  if s <> [||] || node = 0 then
    if node = 0 && s = [||] then begin
      let z = Array.make (sig_length st) 0 in
      st.sig_words.(0) <- z;
      z
    end
    else s
  else begin
    match Aig.node_fanins st.g' node with
    | Some (a, b) ->
      let sa = get_lit_sig st a and sb = get_lit_sig st b in
      let s = Array.map2 ( land ) sa sb in
      st.sig_words.(node) <- s;
      s
    | None ->
      (* An input that somehow has no signature yet. *)
      let len = sig_length st in
      let s = Array.init len (fun _ -> random_word st) in
      s.(len - 1) <- s.(len - 1) land ((1 lsl st.bits_used) - 1);
      st.sig_words.(node) <- s;
      s
  end

and get_lit_sig st l =
  let s = get_sig st (l lsr 1) in
  if l land 1 = 1 then Array.map (fun w -> lnot w land word_mask) s else s

let canon_of s =
  if s.(0) land 1 = 1 then Array.map (fun w -> lnot w land word_mask) s else s

let phase_of s = s.(0) land 1

let register st canon_sig canon_lit =
  let existing =
    Option.value ~default:[] (Hashtbl.find_opt st.classes canon_sig)
  in
  Hashtbl.replace st.classes (Array.copy canon_sig) (canon_lit :: existing);
  st.reps <- canon_lit :: st.reps

let rebuild_classes st =
  Hashtbl.reset st.classes;
  List.iter
    (fun rep ->
      let s = get_lit_sig st rep in
      let existing = Option.value ~default:[] (Hashtbl.find_opt st.classes s) in
      Hashtbl.replace st.classes (Array.copy s) (rep :: existing))
    st.reps

(* Append one input pattern to every computed signature. *)
let refine st pattern =
  let fresh_word = st.bits_used >= 62 in
  let bit = if fresh_word then 0 else st.bits_used in
  st.bits_used <- (if fresh_word then 1 else st.bits_used + 1);
  (* Only nodes with computed signatures participate; nodes beyond the
     storage (created inside query miters) stay lazy. *)
  let tracked = min (Aig.num_nodes st.g') (Array.length st.sig_words) in
  if fresh_word then
    for node = 0 to tracked - 1 do
      if st.sig_words.(node) <> [||] then
        st.sig_words.(node) <- Array.append st.sig_words.(node) [| 0 |]
    done;
  let last = sig_length st - 1 in
  for node = 0 to tracked - 1 do
    if node > 0 && st.sig_words.(node) <> [||] then begin
      let v =
        match Aig.node_fanins st.g' node with
        | Some (a, b) ->
          let bit_of l =
            let s = st.sig_words.(l lsr 1) in
            let raw = (s.(last) lsr bit) land 1 = 1 in
            if l land 1 = 1 then not raw else raw
          in
          bit_of a && bit_of b
        | None -> (
          match Aig.node_input st.g' node with
          | Some k -> k < Array.length pattern && pattern.(k)
          | None -> false)
      in
      if v then
        st.sig_words.(node).(last) <- st.sig_words.(node).(last) lor (1 lsl bit)
    end
  done;
  rebuild_classes st

(* Decide equivalence of two g' literals; on refutation, refine. *)
let prove_equal st a b =
  if a = b then true
  else if a = Aig.not_ b then false
  else begin
    let miter = Aig.xor_ st.g' a b in
    if miter = Aig.false_ then true
    else if miter = Aig.true_ then false
    else begin
      let ml = Aig.encode st.enc miter in
      match
        S.solve_bounded ~assumptions:[ ml ] ~max_conflicts:st.max_conflicts
          st.solver
      with
      | Some S.Unsat ->
        S.add_clause st.solver [ L.negate ml ];
        true
      | Some S.Sat ->
        let ninputs = Aig.num_inputs st.g' in
        let pattern = Array.make ninputs false in
        for node = 0 to Aig.num_nodes st.g' - 1 do
          match Aig.node_input st.g' node with
          | Some k -> (
            match Aig.sat_lit st.enc (node * 2) with
            | sl -> pattern.(k) <- S.value st.solver sl
            | exception Not_found -> ())
          | None -> ()
        done;
        refine st pattern;
        false
      | None -> false
    end
  end

let fraig ?(sim_words = 4) ?(max_conflicts = 1000) g =
  let n = Aig.num_nodes g in
  let g' = Aig.create () in
  let solver = S.create () in
  let st =
    {
      g';
      solver;
      enc = Aig.encoder g' solver;
      max_conflicts;
      sig_words = Array.make (max 64 n) [||];
      bits_used = 62;
      classes = Hashtbl.create 1024;
      reps = [];
      rnd = Random.State.make [| 0x5eed; n |];
    }
  in
  st.sig_words.(0) <- Array.make sim_words 0;
  register st (Array.make sim_words 0) Aig.false_;
  let map = Array.make (max 1 n) Aig.false_ in
  let sub l = map.(l lsr 1) lxor (l land 1) in
  let classify node l =
    if Aig.is_const l then map.(node) <- l
    else begin
      let s = get_lit_sig st l in
      let phase = phase_of s in
      let canon_lit = l lxor phase in
      let rec try_reps tried =
        (* Re-read the class each time: refinement rebuilds the table. *)
        let canon_sig = canon_of (get_lit_sig st l) in
        let candidates =
          Option.value ~default:[] (Hashtbl.find_opt st.classes canon_sig)
        in
        let remaining =
          List.filter (fun r -> not (List.memq r tried)) candidates
        in
        match remaining with
        | [] ->
          register st canon_sig canon_lit;
          map.(node) <- l
        | rep :: _ ->
          if rep = canon_lit then map.(node) <- l
          else if prove_equal st canon_lit rep then map.(node) <- rep lxor phase
          else try_reps (rep :: tried)
      in
      try_reps []
    end
  in
  for node = 0 to n - 1 do
    match Aig.node_fanins g node with
    | None -> (
      match Aig.node_input g node with
      | Some _ ->
        let l = Aig.input g' in
        let node' = l lsr 1 in
        ensure_capacity st node';
        let len = sig_length st in
        let s = Array.init len (fun _ -> random_word st) in
        s.(len - 1) <- s.(len - 1) land ((1 lsl st.bits_used) - 1);
        st.sig_words.(node') <- s;
        map.(node) <- l;
        register st (canon_of s) (l lxor phase_of s)
      | None -> map.(node) <- Aig.false_)
    | Some (a, b) ->
      let l = Aig.and_ g' (sub a) (sub b) in
      classify node l
  done;
  (g', sub)
