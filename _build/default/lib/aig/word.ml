module Bitvec = Dfv_bitvec.Bitvec

type w = Aig.lit array

let const bv =
  Array.init (Bitvec.width bv) (fun i ->
      if Bitvec.get bv i then Aig.true_ else Aig.false_)

let inputs ?name g n =
  Array.init n (fun i ->
      let name =
        match name with
        | Some s -> Some (Printf.sprintf "%s[%d]" s i)
        | None -> None
      in
      Aig.input ?name g)

let width = Array.length

let to_bitvec _g values w =
  Bitvec.of_bits (Array.map (Aig.lit_of_node_value values) w)

let check_same name a b =
  if Array.length a <> Array.length b then
    invalid_arg (Printf.sprintf "Word.%s: width mismatch (%d vs %d)" name
        (Array.length a) (Array.length b))

(* --- bitwise --------------------------------------------------------- *)

let lognot a = Array.map Aig.not_ a

let map2 name f g a b =
  check_same name a b;
  Array.init (Array.length a) (fun i -> f g a.(i) b.(i))

let logand g a b = map2 "logand" Aig.and_ g a b
let logor g a b = map2 "logor" Aig.or_ g a b
let logxor g a b = map2 "logxor" Aig.xor_ g a b

(* --- structure -------------------------------------------------------- *)

let select a ~hi ~lo =
  if lo < 0 || hi < lo || hi >= Array.length a then
    invalid_arg "Word.select: range out of bounds";
  Array.sub a lo (hi - lo + 1)

let concat parts =
  (* Head is most significant: reverse so LSB-first concatenation works. *)
  Array.concat (List.rev parts)

let uresize a n =
  let w = Array.length a in
  if n <= w then Array.sub a 0 n
  else Array.append a (Array.make (n - w) Aig.false_)

let sresize a n =
  let w = Array.length a in
  if n <= w then Array.sub a 0 n
  else Array.append a (Array.make (n - w) a.(w - 1))

let repeat a n =
  if n < 1 then invalid_arg "Word.repeat";
  Array.concat (List.init n (fun _ -> a))

(* --- arithmetic ------------------------------------------------------- *)

let full_adder g a b cin =
  let s = Aig.xor_ g (Aig.xor_ g a b) cin in
  let cout = Aig.or_ g (Aig.and_ g a b) (Aig.and_ g cin (Aig.xor_ g a b)) in
  (s, cout)

let add_with_carry g a b cin =
  check_same "add" a b;
  let n = Array.length a in
  let out = Array.make n Aig.false_ in
  let carry = ref cin in
  for i = 0 to n - 1 do
    let s, c = full_adder g a.(i) b.(i) !carry in
    out.(i) <- s;
    carry := c
  done;
  (out, !carry)

let add g a b = fst (add_with_carry g a b Aig.false_)
let sub g a b = fst (add_with_carry g a (lognot b) Aig.true_)

let neg g a =
  fst (add_with_carry g (Array.map (fun _ -> Aig.false_) a) (lognot a) Aig.true_)

let mux g ~sel a b = map2 "mux" (fun g x y -> Aig.mux g ~sel x y) g a b

let mul g a b =
  check_same "mul" a b;
  let n = Array.length a in
  let acc = ref (Array.make n Aig.false_) in
  for i = 0 to n - 1 do
    (* Partial product: (a << i) masked by b.(i). *)
    let pp =
      Array.init n (fun j ->
          if j < i then Aig.false_ else Aig.and_ g a.(j - i) b.(i))
    in
    acc := add g !acc pp
  done;
  !acc

let ult g a b =
  check_same "ult" a b;
  (* Borrow out of a - b: a < b iff no carry out of a + ~b + 1. *)
  let _, carry = add_with_carry g a (lognot b) Aig.true_ in
  Aig.not_ carry

let ule g a b = Aig.not_ (ult g b a)

let slt g a b =
  check_same "slt" a b;
  let n = Array.length a in
  let sa = a.(n - 1) and sb = b.(n - 1) in
  let sign_differs = Aig.xor_ g sa sb in
  Aig.mux g ~sel:sign_differs sa (ult g a b)

let sle g a b = Aig.not_ (slt g b a)

let eq g a b =
  check_same "eq" a b;
  let bits =
    Array.to_list (Array.init (Array.length a) (fun i -> Aig.not_ (Aig.xor_ g a.(i) b.(i))))
  in
  Aig.and_list g bits

let ne g a b = Aig.not_ (eq g a b)

let reduce_and g a = Aig.and_list g (Array.to_list a)
let reduce_or g a = Aig.or_list g (Array.to_list a)
let reduce_xor g a = Array.fold_left (Aig.xor_ g) Aig.false_ a

(* --- shifts ----------------------------------------------------------- *)

let shift_left _g a n =
  if n < 0 then invalid_arg "Word.shift_left";
  let w = Array.length a in
  Array.init w (fun i -> if i < n then Aig.false_ else a.(i - n))

let shift_right_logical _g a n =
  if n < 0 then invalid_arg "Word.shift_right_logical";
  let w = Array.length a in
  Array.init w (fun i -> if i + n < w then a.(i + n) else Aig.false_)

let shift_right_arith _g a n =
  if n < 0 then invalid_arg "Word.shift_right_arith";
  let w = Array.length a in
  let sign = a.(w - 1) in
  Array.init w (fun i -> if i + n < w then a.(i + n) else sign)

(* Barrel shifter over a constant-shift primitive: stage k shifts by 2^k
   when amount bit k is set; amounts >= width zero (or sign-fill) the
   word via the overflow guard. *)
let barrel g shift_const ~overflow_fill a amount =
  let w = Array.length a in
  let wa = Array.length amount in
  (* Bits of [amount] that can matter: 2^k < w. *)
  let stages = ref a in
  let k = ref 0 in
  while !k < wa && 1 lsl !k < w do
    let shifted = shift_const g !stages (1 lsl !k) in
    stages := mux g ~sel:amount.(!k) shifted !stages;
    incr k
  done;
  (* If any higher amount bit is set, the shift overflows the width. *)
  let high_bits = Array.to_list (Array.sub amount !k (wa - !k)) in
  let overflow = Aig.or_list g high_bits in
  mux g ~sel:overflow overflow_fill !stages

let shift_left_var g a amount =
  let fill = Array.make (Array.length a) Aig.false_ in
  barrel g shift_left ~overflow_fill:fill a amount

let shift_right_logical_var g a amount =
  let fill = Array.make (Array.length a) Aig.false_ in
  barrel g shift_right_logical ~overflow_fill:fill a amount

let shift_right_arith_var g a amount =
  let sign = a.(Array.length a - 1) in
  let fill = Array.make (Array.length a) sign in
  barrel g shift_right_arith ~overflow_fill:fill a amount

(* --- division --------------------------------------------------------- *)

(* Restoring division, bit-serial from the MSB.  Division by zero is made
   total: quotient all-ones, remainder = dividend (documented in the
   interface; SEC flows constrain the divisor instead). *)
let udivrem g a b =
  check_same "udiv" a b;
  let w = Array.length a in
  let q = Array.make w Aig.false_ in
  let r = ref (Array.make w Aig.false_) in
  for i = w - 1 downto 0 do
    (* r = (r << 1) | a.(i) *)
    let shifted = shift_left g !r 1 in
    shifted.(0) <- a.(i);
    let diff, carry = add_with_carry g shifted (lognot b) Aig.true_ in
    (* carry = 1 iff shifted >= b *)
    q.(i) <- carry;
    r := mux g ~sel:carry diff shifted
  done;
  let zero_div = Aig.not_ (reduce_or g b) in
  let all_ones = Array.make w Aig.true_ in
  (mux g ~sel:zero_div all_ones q, mux g ~sel:zero_div a !r)

let udiv g a b = fst (udivrem g a b)
let urem g a b = snd (udivrem g a b)

let abs_s g a =
  let w = Array.length a in
  mux g ~sel:a.(w - 1) (neg g a) a

let sdiv g a b =
  check_same "sdiv" a b;
  let w = Array.length a in
  let q = udiv g (abs_s g a) (abs_s g b) in
  let sign_differs = Aig.xor_ g a.(w - 1) b.(w - 1) in
  mux g ~sel:sign_differs (neg g q) q

let srem g a b =
  check_same "srem" a b;
  let w = Array.length a in
  let r = urem g (abs_s g a) (abs_s g b) in
  mux g ~sel:a.(w - 1) (neg g r) r

(* --- indexed selection ------------------------------------------------ *)

let mux_index g ~default idx words =
  let n = Array.length words in
  let wi = Array.length idx in
  let result = ref default in
  for k = 0 to n - 1 do
    (* Indices not representable in [idx]'s width can never be selected. *)
    if wi >= Sys.int_size - 2 || k < 1 lsl wi then begin
      let kbits =
        Array.init wi (fun b ->
            if (k lsr b) land 1 = 1 then Aig.true_ else Aig.false_)
      in
      let sel = eq g idx kbits in
      result := mux g ~sel words.(k) !result
    end
  done;
  (* Out-of-range indices (k >= n representable in idx) fall through to
     default because no select fires. *)
  !result
