module Bitvec = Dfv_bitvec.Bitvec
module Netlist = Dfv_rtl.Netlist
module Expr = Dfv_rtl.Expr
module Sim = Dfv_rtl.Sim
module Ast = Dfv_hwir.Ast
module Interp = Dfv_hwir.Interp
module Spec = Dfv_sec.Spec

type bug =
  | No_bug
  | Unsigned_slt
  | Truncated_shift_amount
  | Missing_carry
  | Swapped_or_xor

let all_bugs =
  [ Unsigned_slt; Truncated_shift_amount; Missing_carry; Swapped_or_xor ]

let bug_name = function
  | No_bug -> "no-bug"
  | Unsigned_slt -> "unsigned-slt"
  | Truncated_shift_amount -> "truncated-shift-amount"
  | Missing_carry -> "missing-carry"
  | Swapped_or_xor -> "swapped-or-xor"

type t = {
  width : int;
  slm : Ast.program;
  rtl : Netlist.elaborated;
  spec : Spec.t;
}

let opcode_add = 0
let opcode_sub = 1
let opcode_and = 2
let opcode_or = 3
let opcode_xor = 4
let opcode_shl = 5
let opcode_shr = 6
let opcode_slt = 7

(* Shift amounts use the low log2(width) bits of b (width must be a
   power of two so the semantics are crisp). *)
let log2 w =
  let rec go k = if 1 lsl k >= w then k else go (k + 1) in
  go 0

let slm_program width =
  let open Ast in
  let w = width in
  let sh = log2 w in
  let amount = cast (uint sh) (var "b") in
  let signed v = cast (sint w) v in
  let case op body tail = [ If (var "op" ==^ u 3 op, body, tail) ] in
  let body =
    case opcode_add [ ret (var "a" +^ var "b") ]
    @@ case opcode_sub [ ret (var "a" -^ var "b") ]
    @@ case opcode_and [ ret (var "a" &^ var "b") ]
    @@ case opcode_or [ ret (var "a" |^ var "b") ]
    @@ case opcode_xor [ ret (var "a" ^^ var "b") ]
    @@ case opcode_shl [ ret (var "a" <<^ amount) ]
    @@ case opcode_shr [ ret (var "a" >>^ amount) ]
    @@ [ ret (Cond (signed (var "a") <^ signed (var "b"), u w 1, u w 0)) ]
  in
  {
    funcs =
      [ {
          fname = "alu";
          params = [ ("op", uint 3); ("a", uint w); ("b", uint w) ];
          ret = uint w;
          locals = [];
          body;
        } ];
    entry = "alu";
  }

let rtl_module bug width =
  let open Expr in
  let w = width in
  let sh = log2 w in
  let a = sig_ "a" and b = sig_ "b" and op = sig_ "op" in
  let amount_bits = match bug with Truncated_shift_amount -> sh - 1 | _ -> sh in
  let amount = slice b ~hi:(amount_bits - 1) ~lo:0 in
  let sub_result =
    match bug with
    | Missing_carry -> a +: ~:b
    | _ -> a -: b
  in
  let slt_result =
    let cmp = match bug with Unsigned_slt -> a <: b | _ -> a <+ b in
    zext cmp w
  in
  let or_r, xor_r =
    match bug with
    | Swapped_or_xor -> (a ^: b, a |: b)
    | _ -> (a |: b, a ^: b)
  in
  let sel k v rest = mux (op ==: const ~width:3 k) v rest in
  let y =
    sel opcode_add (a +: b)
    @@ sel opcode_sub sub_result
    @@ sel opcode_and (a &: b)
    @@ sel opcode_or or_r
    @@ sel opcode_xor xor_r
    @@ sel opcode_shl (a <<: amount)
    @@ sel opcode_shr (a >>: amount)
    @@ slt_result
  in
  {
    (Netlist.empty (Printf.sprintf "alu%d_%s" w (bug_name bug))) with
    Netlist.inputs =
      [ { Netlist.port_name = "op"; port_width = 3 };
        { Netlist.port_name = "a"; port_width = w };
        { Netlist.port_name = "b"; port_width = w } ];
    outputs = [ ("y", y) ];
  }

let make ?(bug = No_bug) ~width () =
  if width < 4 || 1 lsl log2 width <> width then
    invalid_arg "Alu.make: width must be a power of two >= 4";
  let rtl = Netlist.elaborate (rtl_module bug width) in
  let spec =
    {
      Spec.rtl_cycles = 1;
      drives =
        [ ("op", Spec.At (fun _ -> Spec.Param "op"));
          ("a", Spec.At (fun _ -> Spec.Param "a"));
          ("b", Spec.At (fun _ -> Spec.Param "b")) ];
      checks = [ { Spec.rtl_port = "y"; at_cycle = 0; expect = Spec.Result } ];
      constraints = [];
    }
  in
  { width; slm = slm_program width; rtl; spec }

let golden ~width ~op a b =
  let mask = (1 lsl width) - 1 in
  let a = a land mask and b = b land mask in
  let sh = log2 width in
  let amount = b land ((1 lsl sh) - 1) in
  let to_signed x = if x land (1 lsl (width - 1)) <> 0 then x - (1 lsl width) else x in
  let r =
    if op = opcode_add then a + b
    else if op = opcode_sub then a - b
    else if op = opcode_and then a land b
    else if op = opcode_or then a lor b
    else if op = opcode_xor then a lxor b
    else if op = opcode_shl then a lsl amount
    else if op = opcode_shr then a lsr amount
    else if to_signed a < to_signed b then 1
    else 0
  in
  r land mask

let run_slm t ~op a b =
  Bitvec.to_int
    (Interp.as_int
       (Interp.run t.slm
          [ Interp.vint ~width:3 op;
            Interp.vint ~width:t.width a;
            Interp.vint ~width:t.width b ]))

let run_rtl t ~op a b =
  let sim = Sim.create t.rtl in
  let outs =
    Sim.cycle sim
      [ ("op", Bitvec.create ~width:3 op);
        ("a", Bitvec.create ~width:t.width a);
        ("b", Bitvec.create ~width:t.width b) ]
  in
  Bitvec.to_int (List.assoc "y" outs)
