(** Memory subsystem design pair — variable latency and out-of-order
    completion (experiments F2 and C7).

    The paper's Section 3.2: an SLM models memory as a zero-delay array,
    while "the RTL may even have a hierarchical memory with a cache,
    where the latency of a memory read is a function of the state of the
    cache", and stalls can make the RTL produce outputs in a different
    order than the SLM.  This module provides exactly that ladder:

    - {!slm_model}: the zero-delay array — request in, response out,
      no time;
    - {!rtl_simple}: a fixed-latency pipelined memory (in-order,
      constant delay);
    - {!rtl_cached}: a direct-mapped cache with hit-under-miss in front
      of a slow backing store: hits complete in 1 cycle while a miss is
      outstanding, so completions {e reorder} — the case that defeats
      in-order scoreboards and requires tagged transactors.

    All three expose the same request/response transaction protocol
    (tagged; see {!Dfv_cosim.Txn_engine.interface}). *)

type config = {
  addr_width : int;  (** memory holds [2^addr_width] words *)
  data_width : int;
  tag_width : int;
  index_bits : int;  (** cache has [2^index_bits] direct-mapped lines *)
  miss_penalty : int;  (** cycles a miss spends fetching (>= 2) *)
}

val default_config : config
(** 8-bit addresses, 8-bit data, 4-bit tags, 16 lines, 6-cycle misses. *)

type op = Read of int | Write of int * int
(** [Read addr] / [Write (addr, data)]. *)

type request = { req_tag : int; op : op }

(** The zero-delay SLM. *)
module Slm : sig
  type t

  val create : config -> t
  val reset : t -> unit

  val execute : t -> request -> int
  (** Process a request instantly; returns the response data (the read
      value, or the written data echoed for writes). *)

  val execute_all : t -> request list -> (int * int) list
  (** [(tag, data)] per request, in program order. *)
end

val rtl_simple : config -> Dfv_rtl.Netlist.elaborated
(** Fixed-latency (3-cycle) in-order memory.  Ports: in [req_valid],
    [req_rw] (1 = write), [req_addr], [req_wdata], [req_tag]; out
    [resp_valid], [resp_tag], [resp_data].  Always ready. *)

val rtl_cached : config -> Dfv_rtl.Netlist.elaborated
(** Cache + backing store with hit-under-miss.  Same ports plus the
    [req_ready] output; while a miss is outstanding only read hits are
    accepted (writes and further misses stall). *)

val iface : config -> ready:bool -> Dfv_cosim.Txn_engine.interface
(** Transaction-engine interface for either RTL ([ready:true] for the
    cached design, which has a [req_ready] port). *)

val to_engine_requests : config -> request list -> Dfv_cosim.Txn_engine.request list
(** Encode requests for the transaction engine. *)
