module Bitvec = Dfv_bitvec.Bitvec
module Netlist = Dfv_rtl.Netlist
module Expr = Dfv_rtl.Expr
module Sim = Dfv_rtl.Sim
module Ast = Dfv_hwir.Ast
module Spec = Dfv_sec.Spec

type t = {
  baud_div : int;
  slm : Ast.program;
  rtl : Netlist.elaborated;
  spec : Spec.t;
}

let golden_frame byte =
  Array.init 10 (fun i ->
      if i = 0 then 0
      else if i = 9 then 1
      else (byte lsr (i - 1)) land 1)

(* SLM: the frame as data (no notion of the baud clock at all). *)
let slm_program =
  let open Ast in
  {
    funcs =
      [ {
          fname = "frame";
          params = [ ("data", uint 8) ];
          ret = Tarray (uint 1, 10);
          locals = [ ("bits", Tarray (uint 1, 10)) ];
          body =
            [ assign_idx "bits" (u 4 0) (u 1 0);
              For
                {
                  ivar = "i";
                  count = 8;
                  body =
                    [ assign_idx "bits"
                        (cast (uint 4) (var "i" +^ u 32 1))
                        (cast (uint 1)
                           (Bitsel
                              ( var "data" >>^ cast (uint 3) (var "i"),
                                0, 0 ))) ];
                };
              assign_idx "bits" (u 4 9) (u 1 1);
              ret (var "bits") ];
        } ];
    entry = "frame";
  }

let rtl_module baud_div =
  let open Expr in
  let bw =
    let rec go k = if 1 lsl k >= baud_div then k else go (k + 1) in
    max 1 (go 0)
  in
  let accept = sig_ "start" &: ~:(sig_ "busy") in
  let tick =
    sig_ "busy" &: (sig_ "baud" ==: const ~width:bw (baud_div - 1))
  in
  let last_bit = sig_ "bitcnt" ==: const ~width:4 9 in
  {
    (Netlist.empty (Printf.sprintf "uart_tx_div%d" baud_div)) with
    Netlist.inputs =
      [ { Netlist.port_name = "start"; port_width = 1 };
        { Netlist.port_name = "data"; port_width = 8 } ];
    wires = [ ("accept", accept); ("tick", tick); ("last_bit", last_bit) ];
    regs =
      [ Netlist.reg ~name:"busy" ~width:1
          (mux (sig_ "accept") (const ~width:1 1)
             (mux (sig_ "tick" &: sig_ "last_bit") (const ~width:1 0)
                (sig_ "busy")));
        Netlist.reg ~name:"shift" ~width:10
          (mux (sig_ "accept")
             (concat [ const ~width:1 1; sig_ "data"; const ~width:1 0 ])
             (mux (sig_ "tick")
                (concat [ const ~width:1 1; slice (sig_ "shift") ~hi:9 ~lo:1 ])
                (sig_ "shift")));
        Netlist.reg ~name:"bitcnt" ~width:4
          (mux (sig_ "accept") (const ~width:4 0)
             (mux (sig_ "tick") (sig_ "bitcnt" +: const ~width:4 1)
                (sig_ "bitcnt")));
        Netlist.reg ~name:"baud" ~width:bw
          (mux
             (sig_ "accept" |: sig_ "tick")
             (const ~width:bw 0)
             (mux (sig_ "busy") (sig_ "baud" +: const ~width:bw 1)
                (sig_ "baud"))) ];
    outputs =
      [ ("line", mux (sig_ "busy") (bit (sig_ "shift") 0) (const ~width:1 1));
        ("busy", sig_ "busy") ];
  }

let make ?(baud_div = 4) () =
  if baud_div < 1 then invalid_arg "Uart.make: baud_div must be >= 1";
  let rtl = Netlist.elaborate (rtl_module baud_div) in
  (* Bit k of the frame is on the line during cycles
     [1 + k*baud_div .. (k+1)*baud_div]; sample each at its first
     cycle. *)
  let cycles = (10 * baud_div) + 2 in
  let spec =
    {
      Spec.rtl_cycles = cycles;
      drives =
        [ ( "start",
            Spec.At
              (fun c ->
                Spec.Const (Bitvec.create ~width:1 (if c = 0 then 1 else 0))) );
          ("data", Spec.At (fun _ -> Spec.Param "data")) ];
      checks =
        List.init 10 (fun k ->
            {
              Spec.rtl_port = "line";
              at_cycle = 1 + (k * baud_div);
              expect = Spec.Result_elem k;
            })
        @ [ (* And the line is idle-high again after the frame. *)
            {
              Spec.rtl_port = "busy";
              at_cycle = cycles - 1;
              expect = Spec.Result_elem 0;
            } ];
      constraints = [];
    }
  in
  { baud_div; slm = slm_program; rtl; spec }

let transmit t byte =
  let sim = Sim.create t.rtl in
  let cycles = (10 * t.baud_div) + 2 in
  let trace = Array.make cycles 0 in
  for c = 0 to cycles - 1 do
    let outs =
      Sim.cycle sim
        [ ("start", Bitvec.create ~width:1 (if c = 0 then 1 else 0));
          ("data", Bitvec.create ~width:8 byte) ]
    in
    trace.(c) <- Bitvec.to_int (List.assoc "line" outs)
  done;
  (trace, cycles)
