module Bitvec = Dfv_bitvec.Bitvec
module Netlist = Dfv_rtl.Netlist
module Expr = Dfv_rtl.Expr
module Txn_engine = Dfv_cosim.Txn_engine

type config = {
  addr_width : int;
  data_width : int;
  tag_width : int;
  index_bits : int;
  miss_penalty : int;
}

let default_config =
  { addr_width = 8; data_width = 8; tag_width = 4; index_bits = 4; miss_penalty = 6 }

type op = Read of int | Write of int * int

type request = { req_tag : int; op : op }

let validate c =
  if c.addr_width < c.index_bits + 1 then
    invalid_arg "Memsys: addr_width must exceed index_bits";
  if c.miss_penalty < 2 then invalid_arg "Memsys: miss_penalty must be >= 2";
  if c.addr_width > 16 then invalid_arg "Memsys: addr_width too large to simulate"

(* --- the zero-delay SLM ------------------------------------------------- *)

module Slm = struct
  type t = { config : config; mem : int array }

  let create c =
    validate c;
    { config = c; mem = Array.make (1 lsl c.addr_width) 0 }

  let reset t = Array.fill t.mem 0 (Array.length t.mem) 0

  let execute t r =
    let mask a = a land ((1 lsl t.config.addr_width) - 1) in
    let maskd d = d land ((1 lsl t.config.data_width) - 1) in
    match r.op with
    | Read a -> t.mem.(mask a)
    | Write (a, d) ->
      t.mem.(mask a) <- maskd d;
      maskd d

  let execute_all t rs = List.map (fun r -> (r.req_tag, execute t r)) rs
end

(* --- fixed-latency RTL --------------------------------------------------- *)

(* A 3-stage response pipeline over a synchronous memory: requests are
   always accepted; reads take the array value as of acceptance, writes
   commit at acceptance and echo their data. *)
let rtl_simple c =
  validate c;
  let open Expr in
  let aw = c.addr_width and dw = c.data_width and tw = c.tag_width in
  let stage i (name, width, src) =
    Netlist.reg ~name:(Printf.sprintf "%s%d" name i) ~width src
  in
  let chain name width src =
    [ stage 1 (name, width, src);
      stage 2 (name, width, sig_ (name ^ "1"));
      stage 3 (name, width, sig_ (name ^ "2")) ]
  in
  let read_data = mem_read "mem" (sig_ "req_addr") in
  let data0 = mux (sig_ "req_rw") (sig_ "req_wdata") read_data in
  Netlist.elaborate
    {
      (Netlist.empty "memsys_simple") with
      Netlist.inputs =
        [ { Netlist.port_name = "req_valid"; port_width = 1 };
          { Netlist.port_name = "req_rw"; port_width = 1 };
          { Netlist.port_name = "req_addr"; port_width = aw };
          { Netlist.port_name = "req_wdata"; port_width = dw };
          { Netlist.port_name = "req_tag"; port_width = tw } ];
      mems =
        [ {
            Netlist.mem_name = "mem";
            word_width = dw;
            mem_size = 1 lsl aw;
            writes =
              [ {
                  Netlist.wr_enable = sig_ "req_valid" &: sig_ "req_rw";
                  wr_addr = sig_ "req_addr";
                  wr_data = sig_ "req_wdata";
                } ];
            mem_init = None;
          } ];
      regs =
        chain "v" 1 (sig_ "req_valid")
        @ chain "t" tw (sig_ "req_tag")
        @ chain "d" dw data0;
      outputs =
        [ ("resp_valid", sig_ "v3");
          ("resp_tag", sig_ "t3");
          ("resp_data", sig_ "d3") ];
    }

(* --- cached RTL ------------------------------------------------------------ *)

(* Direct-mapped cache with hit-under-miss.

   Acceptance rules (all combinational from the current request):
   - idle (no outstanding miss): accept anything; a read miss arms the
     miss machine;
   - miss outstanding: accept only read hits (writes and further misses
     stall), and accept nothing on the fill cycle so the response port
     is free for the miss response.

   Responses are registered: an accepted hit/write responds the next
   cycle; a completed miss responds the cycle after its fill. *)
let rtl_cached c =
  validate c;
  let open Expr in
  let aw = c.addr_width and dw = c.data_width and tw = c.tag_width in
  let ib = c.index_bits in
  let lines = 1 lsl ib in
  let tagw = aw - ib in
  let idx = slice (sig_ "req_addr") ~hi:(ib - 1) ~lo:0 in
  let atag = slice (sig_ "req_addr") ~hi:(aw - 1) ~lo:ib in
  let line_valid = bit (sig_ "cvalid" >>: idx) 0 in
  let hit = line_valid &: (mem_read "ctag" idx ==: atag) in
  let is_read = ~:(sig_ "req_rw") in
  let miss_cnt_w = 4 in
  let filling = sig_ "m_active" &: (sig_ "m_cnt" ==: const ~width:miss_cnt_w 1) in
  let ready =
    mux (sig_ "m_active")
      (~:filling &: is_read &: hit)
      (const ~width:1 1)
  in
  let accept = sig_ "req_valid" &: ready in
  let read_miss = accept &: is_read &: ~:hit in
  let m_idx = slice (sig_ "m_addr") ~hi:(ib - 1) ~lo:0 in
  let m_atag = slice (sig_ "m_addr") ~hi:(aw - 1) ~lo:ib in
  let fill_data = mem_read "mem" (sig_ "m_addr") in
  Netlist.elaborate
    {
      (Netlist.empty "memsys_cached") with
      Netlist.inputs =
        [ { Netlist.port_name = "req_valid"; port_width = 1 };
          { Netlist.port_name = "req_rw"; port_width = 1 };
          { Netlist.port_name = "req_addr"; port_width = aw };
          { Netlist.port_name = "req_wdata"; port_width = dw };
          { Netlist.port_name = "req_tag"; port_width = tw } ];
      wires =
        [ ("idx", idx); ("atag", atag); ("hit", hit); ("accept", accept);
          ("read_miss", read_miss); ("filling", filling); ("ready", ready) ];
      mems =
        [ {
            Netlist.mem_name = "mem";
            word_width = dw;
            mem_size = 1 lsl aw;
            writes =
              [ {
                  (* Write-through at acceptance (writes only happen when
                     no miss is outstanding). *)
                  Netlist.wr_enable = sig_ "accept" &: sig_ "req_rw";
                  wr_addr = sig_ "req_addr";
                  wr_data = sig_ "req_wdata";
                } ];
            mem_init = None;
          };
          {
            Netlist.mem_name = "ctag";
            word_width = tagw;
            mem_size = lines;
            writes =
              [ {
                  Netlist.wr_enable = sig_ "filling";
                  wr_addr = m_idx;
                  wr_data = m_atag;
                } ];
            mem_init = None;
          };
          {
            Netlist.mem_name = "cdata";
            word_width = dw;
            mem_size = lines;
            writes =
              [ {
                  Netlist.wr_enable = sig_ "filling";
                  wr_addr = m_idx;
                  wr_data = fill_data;
                };
                {
                  (* Keep the cache coherent on write hits. *)
                  Netlist.wr_enable = sig_ "accept" &: sig_ "req_rw" &: sig_ "hit";
                  wr_addr = idx;
                  wr_data = sig_ "req_wdata";
                } ];
            mem_init = None;
          } ];
      regs =
        [ (* Valid bits, one per line, as a bit mask. *)
          Netlist.reg ~name:"cvalid" ~width:lines
            (mux (sig_ "filling")
               (sig_ "cvalid" |: (zext (const ~width:1 1) lines <<: m_idx))
               (sig_ "cvalid"));
          (* Miss machine. *)
          Netlist.reg ~name:"m_active" ~width:1
            (mux (sig_ "read_miss") (const ~width:1 1)
               (mux (sig_ "filling") (const ~width:1 0) (sig_ "m_active")));
          Netlist.reg ~enable:(sig_ "read_miss") ~name:"m_addr" ~width:aw
            (sig_ "req_addr");
          Netlist.reg ~enable:(sig_ "read_miss") ~name:"m_tag" ~width:tw
            (sig_ "req_tag");
          Netlist.reg ~name:"m_cnt" ~width:miss_cnt_w
            (mux (sig_ "read_miss")
               (const ~width:miss_cnt_w c.miss_penalty)
               (mux
                  (sig_ "m_active" &: (sig_ "m_cnt" <>: const ~width:miss_cnt_w 0))
                  (sig_ "m_cnt" -: const ~width:miss_cnt_w 1)
                  (sig_ "m_cnt")));
          (* Hit/write response (next cycle). *)
          Netlist.reg ~name:"h_valid" ~width:1 (sig_ "accept" &: ~:(sig_ "read_miss"));
          Netlist.reg ~enable:(sig_ "accept") ~name:"h_tag" ~width:tw
            (sig_ "req_tag");
          Netlist.reg ~enable:(sig_ "accept") ~name:"h_data" ~width:dw
            (mux (sig_ "req_rw") (sig_ "req_wdata") (mem_read "cdata" idx));
          (* Miss response (cycle after the fill). *)
          Netlist.reg ~name:"r_valid" ~width:1 (sig_ "filling");
          Netlist.reg ~enable:(sig_ "filling") ~name:"r_tag" ~width:tw
            (sig_ "m_tag");
          Netlist.reg ~enable:(sig_ "filling") ~name:"r_data" ~width:dw fill_data
        ];
      outputs =
        [ ("req_ready", ready);
          ("resp_valid", sig_ "h_valid" |: sig_ "r_valid");
          ("resp_tag", mux (sig_ "r_valid") (sig_ "r_tag") (sig_ "h_tag"));
          ("resp_data", mux (sig_ "r_valid") (sig_ "r_data") (sig_ "h_data")) ];
    }

(* --- transaction-engine glue ------------------------------------------------ *)

let iface c ~ready =
  {
    Txn_engine.idle =
      [ ("req_rw", Bitvec.zero 1);
        ("req_addr", Bitvec.zero c.addr_width);
        ("req_wdata", Bitvec.zero c.data_width);
        ("req_tag", Bitvec.zero c.tag_width) ];
    issue_valid = "req_valid";
    req_tag = Some "req_tag";
    ready = (if ready then Some "req_ready" else None);
    resp_valid = "resp_valid";
    resp_tag = "resp_tag";
    resp_data = "resp_data";
  }

let to_engine_requests c rs =
  List.map
    (fun r ->
      let rw, addr, wdata =
        match r.op with
        | Read a -> (0, a, 0)
        | Write (a, d) -> (1, a, d)
      in
      {
        Txn_engine.tag = Bitvec.create ~width:c.tag_width r.req_tag;
        payload =
          [ ("req_rw", Bitvec.create ~width:1 rw);
            ("req_addr", Bitvec.create ~width:c.addr_width addr);
            ("req_wdata", Bitvec.create ~width:c.data_width wdata) ];
      })
    rs
