(** Image-processing design pair — the paper's running example.

    "The SLM of an image processing block may read in the entire image
    as a single array of pixels while the RTL reads it as a stream of
    pixels" (Section 3.2).  This module provides a 3x3 convolution
    (sum of products, arithmetic shift, clamp to [0, 255]):

    - {!golden}: the whole-image SLM — a plain function from an image
      to the (H-2) x (W-2) valid region, raster order;
    - {!rtl_stream}: the streaming RTL — line buffers, window registers,
      one pixel per cycle with a valid-out for window-complete positions;
    - {!rtl_window} + {!slm_window}: the {e block-level} pair for SEC —
      the combinational 3x3 datapath against its conditioned HWIR model
      (full-image SEC through the line buffers is exactly the kind of
      monolithic query the paper's incremental methodology avoids).

    A bug variant omits the clamp (wrap instead of saturate) — found by
    SEC in milliseconds, and by random cosim only on bright images. *)

type kernel = int array array
(** 3x3, row-major, small signed coefficients. *)

val sharpen : kernel
(** [[0,-1,0],[-1,8,-1],[0,-1,0]], shift 2 — a mild sharpening filter. *)

val box_blur : kernel
(** All-ones kernel, shift 3 (approximate mean). *)

type t = {
  kernel : kernel;
  shift : int;  (** arithmetic right shift applied to the sum *)
  clamped : bool;  (** false = the wrap bug variant *)
  rtl_window : Dfv_rtl.Netlist.elaborated;
      (** in [p0] .. [p8] (8 bits each, row-major window); out [q] (8) *)
  slm_window : Dfv_hwir.Ast.program;
      (** entry [conv : uint 8 array(9) -> uint 8] *)
  window_spec : Dfv_sec.Spec.t;
}

val make : ?clamped:bool -> kernel:kernel -> shift:int -> unit -> t

val golden_pixel : t -> int array -> int
(** Apply the kernel to one 9-pixel window (row-major). *)

val golden : t -> int array array -> int array array
(** Whole-image SLM: input H x W, output (H-2) x (W-2). *)

val rtl_stream : t -> width:int -> Dfv_rtl.Netlist.elaborated
(** Streaming implementation for images [width] pixels wide (any
    height).  Ports: in [din] (8), [vin] (1); out [dout] (8),
    [vout] (1). *)

val run_stream : t -> int array array -> int array array * int
(** Drive an image through the streaming RTL; returns the output image
    and cycles consumed. *)
