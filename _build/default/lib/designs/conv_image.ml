module Bitvec = Dfv_bitvec.Bitvec
module Netlist = Dfv_rtl.Netlist
module Expr = Dfv_rtl.Expr
module Sim = Dfv_rtl.Sim
module Ast = Dfv_hwir.Ast
module Spec = Dfv_sec.Spec

type kernel = int array array

let sharpen = [| [| 0; -1; 0 |]; [| -1; 8; -1 |]; [| 0; -1; 0 |] |]
let box_blur = [| [| 1; 1; 1 |]; [| 1; 1; 1 |]; [| 1; 1; 1 |] |]

type t = {
  kernel : kernel;
  shift : int;
  clamped : bool;
  rtl_window : Netlist.elaborated;
  slm_window : Ast.program;
  window_spec : Spec.t;
}

(* Accumulator width: 9 products of 8-bit pixels by small coefficients
   fit comfortably in 20 bits. *)
let acc_w = 20

let kernel_coeffs k = Array.to_list (Array.concat (Array.to_list k))

(* --- the combinational window datapath (RTL) ------------------------------ *)

let window_rtl ~clamped ~shift coeffs =
  let open Expr in
  let products =
    List.mapi
      (fun i c ->
        zext (sig_ (Printf.sprintf "p%d" i)) acc_w *: const ~width:acc_w c)
      coeffs
  in
  let sum =
    List.fold_left ( +: ) (const ~width:acc_w 0) products
  in
  let shifted = sum >>+ const ~width:5 shift in
  let q =
    if clamped then
      mux
        (shifted <+ const ~width:acc_w 0)
        (const ~width:8 0)
        (mux
           (const ~width:acc_w 255 <+ shifted)
           (const ~width:8 255)
           (slice shifted ~hi:7 ~lo:0))
    else slice shifted ~hi:7 ~lo:0
  in
  {
    (Netlist.empty (if clamped then "conv_window" else "conv_window_wrap")) with
    Netlist.inputs =
      List.init 9 (fun i ->
          { Netlist.port_name = Printf.sprintf "p%d" i; port_width = 8 });
    outputs = [ ("q", q) ];
  }

(* --- the conditioned HWIR window model ------------------------------------ *)

let window_slm ~clamped ~shift coeffs =
  let open Ast in
  let step i c =
    [ assign "acc"
        (var "acc"
        +^ (cast (sint acc_w) (idx "x" (cast (uint 4) (u 32 i)))
           *^ s acc_w c)) ]
  in
  let tail =
    if clamped then
      [ assign "sh" (var "acc" >>^ u 5 shift);
        If (var "sh" <^ s acc_w 0, [ ret (u 8 0) ], []);
        If (s acc_w 255 <^ var "sh", [ ret (u 8 255) ], []);
        ret (cast (uint 8) (var "sh")) ]
    else
      [ assign "sh" (var "acc" >>^ u 5 shift);
        ret (cast (uint 8) (var "sh")) ]
  in
  {
    funcs =
      [ {
          fname = "conv";
          params = [ ("x", Tarray (uint 8, 9)) ];
          ret = uint 8;
          locals = [ ("acc", sint acc_w); ("sh", sint acc_w) ];
          body = List.concat (List.mapi step coeffs) @ tail;
        } ];
    entry = "conv";
  }

let make ?(clamped = true) ~kernel ~shift () =
  if Array.length kernel <> 3 || Array.exists (fun r -> Array.length r <> 3) kernel
  then invalid_arg "Conv_image.make: kernel must be 3x3";
  if shift < 0 || shift > 16 then invalid_arg "Conv_image.make: bad shift";
  let coeffs = kernel_coeffs kernel in
  let rtl_window = Netlist.elaborate (window_rtl ~clamped ~shift coeffs) in
  let window_spec =
    {
      Spec.rtl_cycles = 1;
      drives =
        List.init 9 (fun i ->
            ( Printf.sprintf "p%d" i,
              Spec.At (fun _ -> Spec.Param_elem ("x", i)) ));
      checks = [ { Spec.rtl_port = "q"; at_cycle = 0; expect = Spec.Result } ];
      constraints = [];
    }
  in
  {
    kernel;
    shift;
    clamped;
    rtl_window;
    slm_window = window_slm ~clamped ~shift coeffs;
    window_spec;
  }

(* --- golden whole-image SLM ------------------------------------------------- *)

let golden_pixel t window =
  if Array.length window <> 9 then invalid_arg "Conv_image.golden_pixel";
  let coeffs = Array.concat (Array.to_list t.kernel) in
  let sum = ref 0 in
  Array.iteri (fun i p -> sum := !sum + ((p land 0xff) * coeffs.(i))) window;
  let shifted = !sum asr t.shift in
  if t.clamped then max 0 (min 255 shifted)
  else shifted land 0xff

let golden t img =
  let h = Array.length img in
  if h < 3 then invalid_arg "Conv_image.golden: image too short";
  let w = Array.length img.(0) in
  if w < 3 then invalid_arg "Conv_image.golden: image too narrow";
  Array.iter
    (fun row ->
      if Array.length row <> w then
        invalid_arg "Conv_image.golden: ragged image")
    img;
  Array.init (h - 2) (fun r ->
      Array.init (w - 2) (fun c ->
          let window =
            Array.init 9 (fun k -> img.(r + (k / 3)).(c + (k mod 3)))
          in
          golden_pixel t window))

(* --- streaming RTL ----------------------------------------------------------- *)

(* Line-buffer architecture.  On each accepted pixel at (row, col):
   - lb2[col] holds the pixel two rows up, lb1[col] one row up;
   - the 3x3 window slides right: column regs shift, the new right
     column is (lb2[col], lb1[col], din);
   - output is valid once row >= 2 and col >= 2 (the window covers rows
     row-2..row and cols col-2..col), registered, so it appears one
     cycle after the pixel that completed the window. *)
let rtl_stream t ~width =
  if width < 3 then invalid_arg "Conv_image.rtl_stream: width must be >= 3";
  let open Expr in
  let cw =
    let rec go k = if 1 lsl k >= width then k else go (k + 1) in
    max 1 (go 0)
  in
  let rw = 12 in
  let coeffs = kernel_coeffs t.kernel in
  let col = sig_ "col" and row = sig_ "row" in
  let vin = sig_ "vin" and din = sig_ "din" in
  let top = Expr.mem_read "lb2" col in
  let mid = Expr.mem_read "lb1" col in
  (* Window after shift, row-major: rows are (top, mid, bottom), the new
     right column comes from the buffers + din. *)
  let window_exprs =
    [ sig_ "w00"; sig_ "w01"; top;
      sig_ "w10"; sig_ "w11"; mid;
      sig_ "w20"; sig_ "w21"; din ]
  in
  let products =
    List.map2
      (fun p c -> zext p acc_w *: const ~width:acc_w c)
      window_exprs coeffs
  in
  let sum = List.fold_left ( +: ) (const ~width:acc_w 0) products in
  let shifted = sum >>+ const ~width:5 t.shift in
  let q =
    if t.clamped then
      mux
        (shifted <+ const ~width:acc_w 0)
        (const ~width:8 0)
        (mux
           (const ~width:acc_w 255 <+ shifted)
           (const ~width:8 255)
           (slice shifted ~hi:7 ~lo:0))
    else slice shifted ~hi:7 ~lo:0
  in
  let last_col = col ==: const ~width:cw (width - 1) in
  let window_full =
    (const ~width:rw 2 <=: row) &: (const ~width:cw 2 <=: col)
  in
  let shift_reg name next =
    Netlist.reg ~enable:vin ~name ~width:8 next
  in
  Netlist.elaborate
    {
      (Netlist.empty "conv_stream") with
      Netlist.inputs =
        [ { Netlist.port_name = "din"; port_width = 8 };
          { Netlist.port_name = "vin"; port_width = 1 } ];
      wires = [ ("last_col", last_col); ("window_full", window_full) ];
      mems =
        [ {
            Netlist.mem_name = "lb1";
            word_width = 8;
            mem_size = width;
            writes =
              [ { Netlist.wr_enable = vin; wr_addr = col; wr_data = din } ];
            mem_init = None;
          };
          {
            Netlist.mem_name = "lb2";
            word_width = 8;
            mem_size = width;
            writes =
              [ { Netlist.wr_enable = vin; wr_addr = col; wr_data = mid } ];
            mem_init = None;
          } ];
      regs =
        [ (* Window columns: left and middle (right comes from memory). *)
          shift_reg "w00" (sig_ "w01");
          shift_reg "w01" top;
          shift_reg "w10" (sig_ "w11");
          shift_reg "w11" mid;
          shift_reg "w20" (sig_ "w21");
          shift_reg "w21" din;
          (* Raster counters. *)
          Netlist.reg ~enable:vin ~name:"col" ~width:cw
            (mux (sig_ "last_col") (const ~width:cw 0)
               (col +: const ~width:cw 1));
          Netlist.reg ~enable:(vin &: sig_ "last_col") ~name:"row" ~width:rw
            (row +: const ~width:rw 1);
          (* Registered output. *)
          Netlist.reg ~enable:vin ~name:"result" ~width:8 q;
          Netlist.reg ~name:"vld" ~width:1 (vin &: sig_ "window_full") ];
      outputs = [ ("dout", sig_ "result"); ("vout", sig_ "vld") ];
    }

let run_stream t img =
  let h = Array.length img in
  let w = Array.length img.(0) in
  let rtl = rtl_stream t ~width:w in
  let sim = Sim.create rtl in
  let outputs = ref [] in
  let cycles = ref 0 in
  Array.iter
    (fun rowpix ->
      Array.iter
        (fun p ->
          let outs =
            Sim.cycle sim
              [ ("din", Bitvec.create ~width:8 p); ("vin", Bitvec.one 1) ]
          in
          incr cycles;
          if Bitvec.reduce_or (List.assoc "vout" outs) then
            outputs := Bitvec.to_int (List.assoc "dout" outs) :: !outputs)
        rowpix)
    img;
  (* One drain cycle for the registered output of the last pixel. *)
  let outs =
    Sim.cycle sim [ ("din", Bitvec.zero 8); ("vin", Bitvec.zero 1) ]
  in
  incr cycles;
  if Bitvec.reduce_or (List.assoc "vout" outs) then
    outputs := Bitvec.to_int (List.assoc "dout" outs) :: !outputs;
  let flat = Array.of_list (List.rev !outputs) in
  let oh = h - 2 and ow = w - 2 in
  if Array.length flat <> oh * ow then
    failwith
      (Printf.sprintf "Conv_image.run_stream: got %d outputs, expected %d"
         (Array.length flat) (oh * ow));
  (Array.init oh (fun r -> Array.sub flat (r * ow) ow), !cycles)
