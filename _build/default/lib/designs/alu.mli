(** ALU design pair — the Section 3.1.1 bit-accuracy workhorse.

    An 8-operation combinational ALU exercising exactly the operator
    classes the paper blames for SLM/RTL divergence: width-sensitive
    addition and subtraction, sign-dependent comparison, and shifts with
    truncated amounts.  Ships with a family of realistically-buggy RTL
    variants used by experiment C2 (time-to-counterexample) and by the
    examples. *)

type bug =
  | No_bug
  | Unsigned_slt  (** SLT compares unsigned — a missing sign extension *)
  | Truncated_shift_amount
      (** shifter uses only [b[1:0]] instead of [b[2:0]] *)
  | Missing_carry  (** SUB computed as [a + ~b], the forgotten [+1] *)
  | Swapped_or_xor  (** OR and XOR opcodes wired to each other *)

val all_bugs : bug list
(** Every bug variant (excludes [No_bug]). *)

val bug_name : bug -> string

type t = {
  width : int;
  slm : Dfv_hwir.Ast.program;
      (** entry [alu : uint 3 -> uint w -> uint w -> uint w] *)
  rtl : Dfv_rtl.Netlist.elaborated;
      (** ports: in [op] (3), [a], [b] (w); out [y] (w) *)
  spec : Dfv_sec.Spec.t;  (** single-cycle combinational transaction *)
}

val opcode_add : int
val opcode_sub : int
val opcode_and : int
val opcode_or : int
val opcode_xor : int
val opcode_shl : int
val opcode_shr : int
val opcode_slt : int

val make : ?bug:bug -> width:int -> unit -> t

val golden : width:int -> op:int -> int -> int -> int
(** Reference semantics on plain ints (inputs taken mod [2^width]). *)

val run_slm : t -> op:int -> int -> int -> int
val run_rtl : t -> op:int -> int -> int -> int
