lib/designs/uart.mli: Dfv_hwir Dfv_rtl Dfv_sec
