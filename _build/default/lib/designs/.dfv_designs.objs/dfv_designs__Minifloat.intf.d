lib/designs/minifloat.mli: Dfv_hwir
