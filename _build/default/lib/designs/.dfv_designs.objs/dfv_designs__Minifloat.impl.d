lib/designs/minifloat.ml: Dfv_bitvec Dfv_hwir List
