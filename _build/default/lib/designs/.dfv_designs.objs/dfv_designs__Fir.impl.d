lib/designs/fir.ml: Array Dfv_bitvec Dfv_cosim Dfv_hwir Dfv_rtl Dfv_sec List Printf
