lib/designs/gcd.mli: Dfv_hwir Dfv_rtl Dfv_sec
