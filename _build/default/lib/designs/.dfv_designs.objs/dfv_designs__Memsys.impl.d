lib/designs/memsys.ml: Array Dfv_bitvec Dfv_cosim Dfv_rtl List Printf
