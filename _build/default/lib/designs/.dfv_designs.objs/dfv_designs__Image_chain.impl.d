lib/designs/image_chain.ml: Array Conv_image Dfv_bitvec Dfv_cosim Dfv_hwir Dfv_rtl Dfv_sec List Printf
