lib/designs/alu.ml: Dfv_bitvec Dfv_hwir Dfv_rtl Dfv_sec List Printf
