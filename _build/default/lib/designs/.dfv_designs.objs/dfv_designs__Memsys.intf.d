lib/designs/memsys.mli: Dfv_cosim Dfv_rtl
