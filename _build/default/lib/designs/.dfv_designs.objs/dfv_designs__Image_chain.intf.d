lib/designs/image_chain.mli: Dfv_cosim Dfv_hwir Dfv_rtl Dfv_sec
