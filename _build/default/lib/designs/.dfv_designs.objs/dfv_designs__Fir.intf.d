lib/designs/fir.mli: Dfv_hwir Dfv_rtl Dfv_sec
