lib/designs/conv_image.ml: Array Dfv_bitvec Dfv_hwir Dfv_rtl Dfv_sec List Printf
