lib/designs/alu.mli: Dfv_hwir Dfv_rtl Dfv_sec
