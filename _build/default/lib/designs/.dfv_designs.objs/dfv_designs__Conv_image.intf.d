lib/designs/conv_image.mli: Dfv_hwir Dfv_rtl Dfv_sec
