(** GCD design pair — the quickstart block.

    The system-level model is Euclid's algorithm in conditioned HWIR (a
    bounded loop with a conditional exit); the RTL is a sequential
    datapath that loads on [start] and iterates one modulo step per
    cycle, raising [done_] when finished.  The RTL has data-dependent
    latency, so the SEC transaction checks the result at the worst-case
    cycle — a small instance of the paper's Section 3.2 variable-latency
    alignment problem. *)

type t = {
  width : int;
  slm : Dfv_hwir.Ast.program;  (** entry [gcd : uint w -> uint w -> uint w] *)
  rtl : Dfv_rtl.Netlist.elaborated;
      (** ports: in [a], [b] (w bits), [start] (1); out [result] (w),
          [done_] (1) *)
  spec : Dfv_sec.Spec.t;  (** worst-case-latency transaction *)
  iteration_bound : int;  (** max Euclid iterations at this width *)
}

val golden : int -> int -> int
(** Reference gcd on non-negative ints ([golden 0 0 = 0]). *)

val make : width:int -> t
(** Build the pair at a given bit width (SEC is practical up to ~5 bits
    with the bundled CDCL solver; co-simulation at any width). *)

val run_slm : t -> int -> int -> int
(** Run the SLM (interpreter) on concrete values. *)

val run_rtl : t -> int -> int -> int * int
(** Run the RTL simulator on concrete values; returns (result, cycles
    until [done_]). *)
