module Bitvec = Dfv_bitvec.Bitvec
module Ast = Dfv_hwir.Ast
module Interp = Dfv_hwir.Interp

type t = {
  full : Ast.program;
  lite : Ast.program;
  safe_constraints : Ast.expr list;
}

(* Format: 1 sign, 4 exponent (bias 7, no specials), 3 mantissa. *)

let decode x =
  (* denormal: m/8 * 2^-6; normal: (1+m/8) * 2^(e-7) *)
  let s = if x land 0x80 <> 0 then -1.0 else 1.0 in
  let e = (x lsr 3) land 0xf in
  let m = x land 7 in
  if e = 0 then s *. (float_of_int m /. 8.0) *. (2.0 ** -6.0)
  else s *. (float_of_int (m + 8) /. 8.0) *. (2.0 ** float_of_int (e - 7))

(* --- native reference ----------------------------------------------------- *)

let golden_add ~flush a b =
  let a = a land 0xff and b = b land 0xff in
  let squash x =
    if flush && (x lsr 3) land 0xf = 0 then x land 0x80 else x
  in
  let a = squash a and b = squash b in
  (* Order by magnitude (the encoding is magnitude-monotonic). *)
  let x, y = if a land 0x7f >= b land 0x7f then (a, b) else (b, a) in
  if y land 0x7f = 0 then begin
    if x land 0x7f = 0 then x land y land 0x80 (* -0 only if both -0 *)
    else x
  end
  else begin
    let sx = x land 0x80 in
    let unpack v =
      let e = (v lsr 3) land 0xf and m = v land 7 in
      if e = 0 then (1, m) else (e, m lor 8)
    in
    let ex, sigx = unpack x and ey, sigy = unpack y in
    let d = ex - ey in
    let big = sigx lsl 3 in
    let sm = sigy lsl 3 in
    let shifted = sm lsr d in
    let small = shifted lor (if shifted lsl d <> sm then 1 else 0) in
    let m = if x land 0x80 = y land 0x80 then big + small else big - small in
    if m = 0 then 0
    else begin
      let m = ref m and e = ref ex in
      while !m >= 128 do
        m := (!m lsr 1) lor (!m land 1);
        incr e
      done;
      while !m < 64 && !e > 1 do
        m := !m lsl 1;
        decr e
      done;
      let keep = ref (!m lsr 3) in
      let g = (!m lsr 2) land 1 and st = !m land 3 in
      if g = 1 && (st <> 0 || !keep land 1 = 1) then incr keep;
      if !keep = 16 then begin
        keep := 8;
        incr e
      end;
      if !e > 15 then sx lor 0x7f (* saturate *)
      else if !keep < 8 then begin
        (* Denormal result (e = 1 here). *)
        if flush then sx else sx lor !keep
      end
      else sx lor (!e lsl 3) lor (!keep - 8)
    end
  end

(* --- HWIR model ------------------------------------------------------------ *)

let program ~flush =
  let open Ast in
  let w = 16 in
  let c v = u w v in
  let v16 n = var n in
  (* All work happens in uint16 locals. *)
  let exf e v = assign e ((v16 v >>^ c 3) &^ c 15) in
  let squash v =
    if flush then
      [ If ((v16 v >>^ c 3) &^ c 15 ==^ c 0, [ assign v (v16 v &^ c 0x80) ], []) ]
    else []
  in
  let body =
    [ assign "xv" (cast (uint w) (var "a"));
      assign "yv" (cast (uint w) (var "b")) ]
    @ squash "xv" @ squash "yv"
    @ [ (* Order by magnitude. *)
        If
          ( v16 "xv" &^ c 0x7f <^ (v16 "yv" &^ c 0x7f),
            [ assign "t" (v16 "xv");
              assign "xv" (v16 "yv");
              assign "yv" (v16 "t") ],
            [] );
        (* Trivial cases. *)
        If
          ( v16 "yv" &^ c 0x7f ==^ c 0,
            [ If
                ( v16 "xv" &^ c 0x7f ==^ c 0,
                  [ ret (cast (uint 8) (v16 "xv" &^ v16 "yv" &^ c 0x80)) ],
                  [ ret (cast (uint 8) (v16 "xv")) ] ) ],
            [] );
        assign "sxb" (v16 "xv" &^ c 0x80);
        (* Unpack. *)
        exf "ex" "xv";
        exf "ey" "yv";
        assign "sigx"
          (Cond (v16 "ex" ==^ c 0, v16 "xv" &^ c 7, (v16 "xv" &^ c 7) |^ c 8));
        assign "sigy"
          (Cond (v16 "ey" ==^ c 0, v16 "yv" &^ c 7, (v16 "yv" &^ c 7) |^ c 8));
        If (v16 "ex" ==^ c 0, [ assign "ex" (c 1) ], []);
        If (v16 "ey" ==^ c 0, [ assign "ey" (c 1) ], []);
        (* Align with a sticky bit. *)
        assign "d" (v16 "ex" -^ v16 "ey");
        assign "big" (v16 "sigx" <<^ c 3);
        assign "sm" (v16 "sigy" <<^ c 3);
        assign "shifted" (v16 "sm" >>^ v16 "d");
        assign "small"
          (v16 "shifted"
          |^ Cond (v16 "shifted" <<^ v16 "d" <>^ v16 "sm", c 1, c 0));
        (* Add or subtract magnitudes. *)
        If
          ( v16 "xv" &^ c 0x80 ==^ (v16 "yv" &^ c 0x80),
            [ assign "m" (v16 "big" +^ v16 "small") ],
            [ assign "m" (v16 "big" -^ v16 "small") ] );
        If (v16 "m" ==^ c 0, [ ret (u 8 0) ], []);
        assign "e" (v16 "ex");
        (* Normalize: bounded loops with conditional exits (the paper's
           conditioned-loop discipline on a real datapath). *)
        Bounded_while
          {
            cond = c 128 <=^ v16 "m";
            max_iter = 2;
            body =
              [ assign "m" ((v16 "m" >>^ c 1) |^ (v16 "m" &^ c 1));
                assign "e" (v16 "e" +^ c 1) ];
          };
        Bounded_while
          {
            cond = (v16 "m" <^ c 64) &&^ (c 1 <^ v16 "e");
            max_iter = 8;
            body = [ assign "m" (v16 "m" <<^ c 1); assign "e" (v16 "e" -^ c 1) ];
          };
        (* Round to nearest even. *)
        assign "keep" (v16 "m" >>^ c 3);
        If
          ( (v16 "m" >>^ c 2) &^ c 1 ==^ c 1
            &&^ ((v16 "m" &^ c 3 <>^ c 0) ||^ (v16 "keep" &^ c 1 ==^ c 1)),
            [ assign "keep" (v16 "keep" +^ c 1) ],
            [] );
        If
          ( v16 "keep" ==^ c 16,
            [ assign "keep" (c 8); assign "e" (v16 "e" +^ c 1) ],
            [] );
        (* Saturating overflow (the format has no infinities). *)
        If (c 15 <^ v16 "e", [ ret (cast (uint 8) (v16 "sxb" |^ c 0x7f)) ], []);
        (* Denormal result. *)
        If
          ( v16 "keep" <^ c 8,
            [ (if flush then ret (cast (uint 8) (v16 "sxb"))
               else ret (cast (uint 8) (v16 "sxb" |^ v16 "keep"))) ],
            [] );
        ret
          (cast (uint 8)
             (v16 "sxb" |^ (v16 "e" <<^ c 3) |^ (v16 "keep" -^ c 8))) ]
  in
  {
    funcs =
      [ {
          fname = "fadd";
          params = [ ("a", uint 8); ("b", uint 8) ];
          ret = uint 8;
          locals =
            List.map
              (fun n -> (n, uint w))
              [ "xv"; "yv"; "t"; "sxb"; "ex"; "ey"; "sigx"; "sigy"; "d";
                "big"; "sm"; "shifted"; "small"; "m"; "e"; "keep" ];
          body;
        } ];
    entry = "fadd";
  }

let make () =
  let open Ast in
  let normal_enough v = u 4 5 <=^ Bitsel (var v, 6, 3) in
  {
    full = program ~flush:false;
    lite = program ~flush:true;
    safe_constraints = [ normal_enough "a"; normal_enough "b" ];
  }

let run prog a b =
  Bitvec.to_int
    (Interp.as_int
       (Interp.run prog [ Interp.vint ~width:8 a; Interp.vint ~width:8 b ]))
