(** Minifloat adder pair — floating-point corner cases under SEC
    (experiment C5's formal half).

    The paper's Section 3.1.2: the SLM uses full IEEE semantics, the RTL
    cuts denormal/special-case corners, so the pair is only conditionally
    bit-accurate, and "the most effective technique ... is to constrain
    the input space ... such that the differences do not show up."

    Full binary32 through a SAT-based checker is out of reach of the
    bundled solver, so this block uses an 8-bit minifloat (1 sign, 4
    exponent, 3 mantissa; no NaN/infinity encodings, overflow saturates)
    — wide enough to have real denormals, normalization and rounding,
    small enough that SEC answers in milliseconds and the claims can be
    cross-checked exhaustively (65536 input pairs).

    Both models are conditioned HWIR programs (the adder's normalization
    loop is a bounded loop with a conditional exit — the Section 4.3
    discipline applied to a nontrivial datapath). *)

type t = {
  full : Dfv_hwir.Ast.program;
      (** denormal-supporting adder; entry
          [fadd : uint 8 -> uint 8 -> uint 8] *)
  lite : Dfv_hwir.Ast.program;
      (** flush-to-zero adder (the RTL-style shortcut), same entry *)
  safe_constraints : Dfv_hwir.Ast.expr list;
      (** input constraints under which the two provably agree: both
          operands normal with exponent field >= 5, so no result can
          land in the denormal range *)
}

val make : unit -> t

val golden_add : flush:bool -> int -> int -> int
(** Native reference implementation (used by the tests to validate both
    HWIR models exhaustively). *)

val run : Dfv_hwir.Ast.program -> int -> int -> int
(** Interpret a model on two 8-bit patterns. *)

val decode : int -> float
(** Decode an 8-bit minifloat pattern to a host float (exact). *)
