module Bitvec = Dfv_bitvec.Bitvec
module Netlist = Dfv_rtl.Netlist
module Expr = Dfv_rtl.Expr
module Sim = Dfv_rtl.Sim
module Ast = Dfv_hwir.Ast
module Interp = Dfv_hwir.Interp
module Spec = Dfv_sec.Spec

type t = {
  width : int;
  slm : Ast.program;
  rtl : Netlist.elaborated;
  spec : Spec.t;
  iteration_bound : int;
}

let golden a b =
  if a < 0 || b < 0 then invalid_arg "Gcd.golden: negative input";
  let rec go a b = if b = 0 then a else go b (a mod b) in
  go a b

(* Euclid needs at most O(log_phi 2^w) modulo steps; 2w is a safe and
   simple static bound at every width. *)
let bound_for width = 2 * width

let slm_program width =
  let open Ast in
  let w = width in
  {
    funcs =
      [ {
          fname = "gcd";
          params = [ ("a", uint w); ("b", uint w) ];
          ret = uint w;
          locals = [ ("x", uint w); ("y", uint w); ("t", uint w) ];
          body =
            [ assign "x" (var "a");
              assign "y" (var "b");
              Bounded_while
                {
                  cond = var "y" <>^ u w 0;
                  max_iter = bound_for width;
                  body =
                    [ assign "t" (var "y");
                      assign "y" (var "x" %^ var "y");
                      assign "x" (var "t") ];
                };
              ret (var "x") ];
        } ];
    entry = "gcd";
  }

let rtl_module width =
  let open Expr in
  let w = width in
  let iterate = sig_ "busy" &: (sig_ "y" <>: const ~width:w 0) in
  let step = sig_ "start" |: sig_ "iterate" in
  {
    (Netlist.empty (Printf.sprintf "gcd_rtl%d" w)) with
    Netlist.inputs =
      [ { Netlist.port_name = "a"; port_width = w };
        { Netlist.port_name = "b"; port_width = w };
        { Netlist.port_name = "start"; port_width = 1 } ];
    wires = [ ("iterate", iterate) ];
    regs =
      [ Netlist.reg ~enable:step ~name:"x" ~width:w
          (mux (sig_ "start") (sig_ "a") (sig_ "y"));
        Netlist.reg ~enable:step ~name:"y" ~width:w
          (mux (sig_ "start") (sig_ "b") (sig_ "x" %: sig_ "y"));
        Netlist.reg ~name:"busy" ~width:1 (sig_ "busy" |: sig_ "start") ];
    outputs =
      [ ("result", sig_ "x");
        ("done_", sig_ "busy" &: (sig_ "y" ==: const ~width:w 0)) ];
  }

let make ~width =
  if width < 2 then invalid_arg "Gcd.make: width must be >= 2";
  let bound = bound_for width in
  let rtl = Netlist.elaborate (rtl_module width) in
  let cycles = bound + 3 in
  let spec =
    {
      Spec.rtl_cycles = cycles;
      drives =
        [ ("a", Spec.At (fun _ -> Spec.Param "a"));
          ("b", Spec.At (fun _ -> Spec.Param "b"));
          ( "start",
            Spec.At
              (fun c ->
                Spec.Const (Bitvec.create ~width:1 (if c = 0 then 1 else 0))) )
        ];
      checks =
        [ { Spec.rtl_port = "result"; at_cycle = cycles - 1; expect = Spec.Result } ];
      constraints = [];
    }
  in
  { width; slm = slm_program width; rtl; spec; iteration_bound = bound }

let run_slm t a b =
  Bitvec.to_int
    (Interp.as_int
       (Interp.run t.slm
          [ Interp.vint ~width:t.width a; Interp.vint ~width:t.width b ]))

let run_rtl t a b =
  let sim = Sim.create t.rtl in
  let bv w x = Bitvec.create ~width:w x in
  let inputs first =
    [ ("a", bv t.width a);
      ("b", bv t.width b);
      ("start", bv 1 (if first then 1 else 0)) ]
  in
  let rec go cycle =
    let outs = Sim.cycle sim (inputs (cycle = 0)) in
    if Bitvec.reduce_or (List.assoc "done_" outs) then
      (Bitvec.to_int (List.assoc "result" outs), cycle)
    else if cycle > t.iteration_bound + 4 then
      failwith "Gcd.run_rtl: did not finish within the iteration bound"
    else go (cycle + 1)
  in
  go 0
