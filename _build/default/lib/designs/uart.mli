(** UART transmitter design pair — protocol serialization under SEC.

    A classic interface-refinement case (paper Section 3.2): the SLM
    describes {e what} goes on the wire — a 10-bit frame (start bit 0,
    eight data bits LSB first, stop bit 1) — as a plain function from the
    byte to the bit vector; the RTL serializes that frame onto a 1-bit
    line at one bit per [baud_div] clock cycles.  The transaction spec
    is the transactor: it knows at which cycle each frame bit is visible
    on the line and compares it against the corresponding element of the
    SLM result. *)

type t = {
  baud_div : int;  (** clock cycles per bit (>= 1) *)
  slm : Dfv_hwir.Ast.program;
      (** entry [frame : uint 8 -> uint 1 array(10)] *)
  rtl : Dfv_rtl.Netlist.elaborated;
      (** ports: in [start] (1), [data] (8); out [line] (1), [busy] (1).
          The line idles high. *)
  spec : Dfv_sec.Spec.t;  (** one whole frame *)
}

val make : ?baud_div:int -> unit -> t
(** Default [baud_div] 4. *)

val golden_frame : int -> int array
(** The 10 frame bits for a byte, start bit first. *)

val transmit : t -> int -> int array * int
(** Drive one byte through the RTL simulator; returns the full line
    trace (one sample per cycle, from the start-request cycle until the
    line returns to idle) and the number of cycles. *)
