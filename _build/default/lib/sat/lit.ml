type t = int

let make v pos = (v * 2) + if pos then 0 else 1
let pos v = v * 2
let neg v = (v * 2) + 1
let var l = l lsr 1
let negate l = l lxor 1
let is_pos l = l land 1 = 0

let to_dimacs l = if is_pos l then var l + 1 else -(var l + 1)

let of_dimacs n =
  if n = 0 then invalid_arg "Lit.of_dimacs: zero";
  if n > 0 then pos (n - 1) else neg (-n - 1)

let to_string l = string_of_int (to_dimacs l)
