(** Propositional literals.

    A variable is a non-negative integer; a literal packs a variable and a
    polarity into one int ([2*var] for the positive literal, [2*var + 1]
    for its negation).  This is the usual MiniSat encoding. *)

type t = int

val make : int -> bool -> t
(** [make v pos] is the literal over variable [v] with polarity [pos]
    ([pos = true] means the positive literal). *)

val pos : int -> t
(** [pos v] is the positive literal of variable [v]. *)

val neg : int -> t
(** [neg v] is the negative literal of variable [v]. *)

val var : t -> int
(** The underlying variable. *)

val negate : t -> t
(** The opposite literal. *)

val is_pos : t -> bool
(** Whether the literal is positive. *)

val to_dimacs : t -> int
(** DIMACS encoding: [var+1] for positive, [-(var+1)] for negative. *)

val of_dimacs : int -> t
(** Inverse of {!to_dimacs}.  Raises [Invalid_argument] on 0. *)

val to_string : t -> string
(** Human-readable form, e.g. ["3"] or ["-3"] (DIMACS numbering). *)
