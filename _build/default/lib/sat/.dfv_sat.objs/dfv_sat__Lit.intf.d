lib/sat/lit.mli:
