lib/sat/lit.ml:
