(** DIMACS CNF reading and writing.

    The standalone interchange format for the SAT substrate: lets the
    solver be exercised against external instances and lets the
    equivalence checker dump the CNF of a miter for inspection. *)

type cnf = { num_vars : int; clauses : Lit.t list list }

val parse_string : string -> cnf
(** Parse DIMACS CNF text.  Comment lines ([c ...]) are skipped; the
    problem line ([p cnf V C]) is validated.  Raises [Failure] with a
    descriptive message on malformed input. *)

val parse_file : string -> cnf
(** {!parse_string} on a file's contents. *)

val to_string : cnf -> string
(** Render a CNF in DIMACS format. *)

val load : Solver.t -> cnf -> unit
(** Allocate the variables of [cnf] in the solver (assumes a fresh
    solver, or at least that variables [0 .. num_vars-1] should map to
    new solver variables) and add all clauses. *)
