lib/bitvec/cint.ml: Bitvec Format Int64
