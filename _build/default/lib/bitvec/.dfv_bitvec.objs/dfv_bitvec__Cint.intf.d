lib/bitvec/cint.mli: Bitvec Format
