lib/bitvec/bitvec.ml: Array Buffer Char Format List Printf Random Stdlib String Sys
