(** C/C++ integer semantics, for modeling int-based system-level models.

    The paper's Section 3.1.1 identifies the dominant source of SLM/RTL
    computational divergence: C/C++ SLMs compute in the language's fixed
    native types ([int], [short], [long long], ...) with the usual
    arithmetic conversions, while RTL computes in custom-width bit-vectors.
    This module implements the C evaluation rules precisely (an LP64 data
    model), so that an SLM written against it reproduces exactly the
    behaviour — including the masked overflows of Fig. 1 — that a C model
    would exhibit.

    Arithmetic on signed types wraps two's-complement (the de-facto
    behaviour SLM authors rely on); each wrapping signed operation is also
    reported through {!overflow_occurred} so experiments can count the
    overflows that C silently masks. *)

(** The integer types of an LP64 C implementation. *)
type ctype =
  | I8   (** [signed char] *)
  | U8   (** [unsigned char] *)
  | I16  (** [short] *)
  | U16  (** [unsigned short] *)
  | I32  (** [int] *)
  | U32  (** [unsigned int] *)
  | I64  (** [long long] *)
  | U64  (** [unsigned long long] *)

type t
(** A typed C integer value. *)

val ctype_width : ctype -> int
(** Bit width of a C type: 8, 16, 32 or 64. *)

val ctype_signed : ctype -> bool
(** Whether a C type is signed. *)

val make : ctype -> int -> t
(** [make ty v] converts [v] to type [ty] using C conversion rules
    (truncation to the type's width, then reinterpretation per the type's
    signedness). *)

val ctype : t -> ctype
(** The static type of a value. *)

val value : t -> int
(** The mathematical value, as an OCaml int.  Raises [Failure] for [U64]
    values above [max_int] (they do not fit OCaml's 63-bit int). *)

val value_i64 : t -> int64
(** The raw two's-complement bits, for [U64]-safe observation. *)

val equal : t -> t -> bool
(** Value-and-type equality. *)

val pp : Format.formatter -> t -> unit

val usual_conversions : t -> t -> t * t
(** [usual_conversions a b] applies C's integer promotions followed by the
    usual arithmetic conversions, returning both operands converted to the
    common type. *)

val promote : t -> t
(** C integer promotion: ranks below [int] promote to [int]. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

val div : t -> t -> t
(** C division (truncating).  Raises [Division_by_zero]. *)

val rem : t -> t -> t
(** C remainder.  Raises [Division_by_zero]. *)

val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t
val lognot : t -> t

val shift_left : t -> int -> t
(** [shift_left a n]: the result type is the promoted type of [a], as in
    C.  Bits shifted past the width are lost. *)

val shift_right : t -> int -> t
(** [shift_right a n]: arithmetic for signed operands, logical for
    unsigned — the behaviour of every mainstream C compiler. *)

val neg : t -> t

val lt : t -> t -> bool
(** Comparison after the usual arithmetic conversions — including the
    notorious signed/unsigned comparison pitfall ([-1 < 1u] is false
    in C). *)

val le : t -> t -> bool
val gt : t -> t -> bool
val ge : t -> t -> bool
val eq : t -> t -> bool

val cast : ctype -> t -> t
(** Explicit C cast. *)

val to_bitvec : t -> Bitvec.t
(** The value as a bit-vector of the type's width. *)

val of_bitvec : ctype -> Bitvec.t -> t
(** [of_bitvec ty bv] reinterprets the low bits of [bv] as a [ty];
    [bv] is resized to the type's width (zero-extended) first. *)

val reset_overflow_count : unit -> unit
(** Reset the global counter of silently-wrapping signed operations. *)

val overflow_count : unit -> int
(** Number of signed operations that wrapped since the last reset.  This
    is the instrumentation behind experiment C4: C models mask exactly
    these events. *)

val overflow_occurred : unit -> bool
(** [overflow_count () > 0]. *)
