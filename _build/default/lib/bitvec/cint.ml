(* C/C++ integer semantics on an LP64 data model.

   Representation: the two's-complement bits live in an [int64], already
   normalized to the static type (sign-extended for signed types,
   zero-extended for unsigned ones, with U64 using all 64 bits). *)

type ctype = I8 | U8 | I16 | U16 | I32 | U32 | I64 | U64

type t = { ty : ctype; bits : int64 }

let ctype_width = function
  | I8 | U8 -> 8
  | I16 | U16 -> 16
  | I32 | U32 -> 32
  | I64 | U64 -> 64

let ctype_signed = function
  | I8 | I16 | I32 | I64 -> true
  | U8 | U16 | U32 | U64 -> false

let rank = function
  | I8 | U8 -> 0
  | I16 | U16 -> 1
  | I32 | U32 -> 2
  | I64 | U64 -> 3

let unsigned_of = function
  | I8 | U8 -> U8
  | I16 | U16 -> U16
  | I32 | U32 -> U32
  | I64 | U64 -> U64

(* Normalize raw bits to the representation invariant of [ty]. *)
let norm ty bits =
  let w = ctype_width ty in
  let bits =
    if w = 64 then bits
    else begin
      let shift = 64 - w in
      if ctype_signed ty then Int64.shift_right (Int64.shift_left bits shift) shift
      else Int64.shift_right_logical (Int64.shift_left bits shift) shift
    end
  in
  { ty; bits }

let make ty v = norm ty (Int64.of_int v)
let ctype t = t.ty
let value_i64 t = t.bits

let value t =
  match t.ty with
  | U64 when Int64.compare t.bits 0L < 0 || Int64.compare t.bits (Int64.of_int max_int) > 0 ->
    failwith "Cint.value: u64 value exceeds OCaml int range"
  | I64 | U64 | I32 | U32 | I16 | U16 | I8 | U8 -> Int64.to_int t.bits

let equal a b = a.ty = b.ty && Int64.equal a.bits b.bits

let type_name = function
  | I8 -> "int8" | U8 -> "uint8" | I16 -> "int16" | U16 -> "uint16"
  | I32 -> "int32" | U32 -> "uint32" | I64 -> "int64" | U64 -> "uint64"

let pp fmt t =
  if t.ty = U64 && Int64.compare t.bits 0L < 0 then
    Format.fprintf fmt "%Lu:%s" t.bits (type_name t.ty)
  else Format.fprintf fmt "%Ld:%s" t.bits (type_name t.ty)

let cast ty t = norm ty t.bits

(* Integer promotion: every type of rank below int promotes to int (all
   their values fit in int, so the promoted type is always signed I32). *)
let promote t = if rank t.ty < rank I32 then cast I32 t else t

let common_type ta tb =
  if ta = tb then ta
  else begin
    let sa = ctype_signed ta and sb = ctype_signed tb in
    if sa = sb then (if rank ta >= rank tb then ta else tb)
    else begin
      let u, s = if sa then (tb, ta) else (ta, tb) in
      if rank u >= rank s then u
        (* LP64: a signed type of strictly greater rank represents every
           value of the lower-rank unsigned type. *)
      else if rank s > rank u then s
      else unsigned_of s
    end
  end

let usual_conversions a b =
  let a = promote a and b = promote b in
  let ty = common_type a.ty b.ty in
  (cast ty a, cast ty b)

(* --- signed-overflow instrumentation ------------------------------- *)

let overflows = ref 0
let reset_overflow_count () = overflows := 0
let overflow_count () = !overflows
let overflow_occurred () = !overflows > 0

let record_if_wrapped ty exact_fits =
  if ctype_signed ty && not exact_fits then incr overflows

(* Whether [bits] (a full-width int64 result of the mathematical op on
   int64 inputs, itself possibly wrapped at 64 bits) equals the normalized
   value: detects wrap at widths < 64.  For 64-bit ops we detect wrap
   separately. *)
let fits ty bits = Int64.equal (norm ty bits).bits bits

let add a b =
  let a, b = usual_conversions a b in
  let r = Int64.add a.bits b.bits in
  let wrapped64 =
    (* Signed 64-bit overflow: operands same sign, result different. *)
    ctype_width a.ty = 64
    && Int64.compare (Int64.logxor a.bits b.bits) 0L >= 0
    && Int64.compare (Int64.logxor a.bits r) 0L < 0
  in
  record_if_wrapped a.ty (not wrapped64 && fits a.ty r);
  norm a.ty r

let sub a b =
  let a, b = usual_conversions a b in
  let r = Int64.sub a.bits b.bits in
  let wrapped64 =
    ctype_width a.ty = 64
    && Int64.compare (Int64.logxor a.bits b.bits) 0L < 0
    && Int64.compare (Int64.logxor a.bits r) 0L < 0
  in
  record_if_wrapped a.ty (not wrapped64 && fits a.ty r);
  norm a.ty r

let mul a b =
  let a, b = usual_conversions a b in
  let r = Int64.mul a.bits b.bits in
  let wrapped64 =
    ctype_width a.ty = 64 && ctype_signed a.ty
    && (not (Int64.equal a.bits 0L))
    && not (Int64.equal (Int64.div r a.bits) b.bits)
  in
  record_if_wrapped a.ty (not wrapped64 && fits a.ty r);
  norm a.ty r

let udiv64 a b = Int64.unsigned_div a b
let urem64 a b = Int64.unsigned_rem a b

let div a b =
  let a, b = usual_conversions a b in
  if Int64.equal b.bits 0L then raise Division_by_zero;
  let r =
    if ctype_signed a.ty then Int64.div a.bits b.bits else udiv64 a.bits b.bits
  in
  norm a.ty r

let rem a b =
  let a, b = usual_conversions a b in
  if Int64.equal b.bits 0L then raise Division_by_zero;
  let r =
    if ctype_signed a.ty then Int64.rem a.bits b.bits else urem64 a.bits b.bits
  in
  norm a.ty r

let logand a b =
  let a, b = usual_conversions a b in
  norm a.ty (Int64.logand a.bits b.bits)

let logor a b =
  let a, b = usual_conversions a b in
  norm a.ty (Int64.logor a.bits b.bits)

let logxor a b =
  let a, b = usual_conversions a b in
  norm a.ty (Int64.logxor a.bits b.bits)

let lognot a =
  let a = promote a in
  norm a.ty (Int64.lognot a.bits)

let neg a =
  let a = promote a in
  let r = Int64.neg a.bits in
  record_if_wrapped a.ty (fits a.ty r);
  norm a.ty r

let shift_left a n =
  let a = promote a in
  if n < 0 || n >= ctype_width a.ty then
    invalid_arg "Cint.shift_left: shift amount out of range";
  let r = Int64.shift_left a.bits n in
  record_if_wrapped a.ty (fits a.ty r);
  norm a.ty r

let shift_right a n =
  let a = promote a in
  if n < 0 || n >= ctype_width a.ty then
    invalid_arg "Cint.shift_right: shift amount out of range";
  let r =
    if ctype_signed a.ty then Int64.shift_right a.bits n
    else Int64.shift_right_logical a.bits n
  in
  norm a.ty r

let cmp a b =
  let a, b = usual_conversions a b in
  if ctype_signed a.ty then Int64.compare a.bits b.bits
  else Int64.unsigned_compare a.bits b.bits

let lt a b = cmp a b < 0
let le a b = cmp a b <= 0
let gt a b = cmp a b > 0
let ge a b = cmp a b >= 0
let eq a b = cmp a b = 0

let to_bitvec t =
  let w = ctype_width t.ty in
  if w <= 62 then Bitvec.create ~width:w (Int64.to_int t.bits)
  else begin
    let lo = Bitvec.create ~width:32 (Int64.to_int (Int64.logand t.bits 0xFFFFFFFFL)) in
    let hi =
      Bitvec.create ~width:32 (Int64.to_int (Int64.shift_right_logical t.bits 32))
    in
    Bitvec.concat [ hi; lo ]
  end

let of_bitvec ty bv =
  let w = ctype_width ty in
  let bv = Bitvec.uresize bv w in
  if w <= 62 then make ty (Bitvec.to_int bv)
  else begin
    let lo = Int64.of_int (Bitvec.to_int (Bitvec.select bv ~hi:31 ~lo:0)) in
    let hi = Int64.of_int (Bitvec.to_int (Bitvec.select bv ~hi:63 ~lo:32)) in
    norm ty (Int64.logor (Int64.shift_left hi 32) lo)
  end
